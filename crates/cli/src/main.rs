//! `mfc-run <case.json>` — execute a JSON case file.

use mfc_cli::{dry_run, run_case, CaseFile, RunError};
use mfc_core::rhs::RhsMode;

const USAGE: &str = "usage: mfc-run <case.json> [--validate] [--dry-run] \
[--rhs-mode staged|fused] [--overlap] [--workers N] [--vector-width N] \
[--faults plan.json] \
[--checkpoint-every N] [--ckpt-keep N] [--failure-policy revive|shrink|spare] \
[--spares N] [--recovery ladder.json] [--max-retries N] \
[--trace out.json] [--io-wave N]";

const HELP: &str = "\
mfc-run — execute a JSON case file on the MFC reproduction solver

usage: mfc-run <case.json> [flags]

flags:
  --help                 print this help and exit
  --validate             parse and validate the case, run nothing
  --dry-run              full admission-grade validation without stepping:
                         schema, solver configuration, stopping criteria,
                         rank decomposition + halo extents, worker /
                         vector-width bounds, fault-plan and recovery
                         files; exits 0 (valid) or 2 (invalid). The same
                         check mfc-serve applies before admitting a job
  --rhs-mode MODE        sweep engine: 'staged' grid-sized buffers or the
                         'fused' pencil engine (default; bitwise identical)
  --overlap              distributed runs: overlap the halo exchange with
                         the interior RHS sweeps on async queues (the
                         paper's OpenACC overlap; bitwise identical to the
                         default exchange). numerics.overlap case key
  --workers N            worker threads per rank for the gang-parallel
                         kernels (numerics.workers case key; default 1).
                         Results are bitwise identical at every count
  --vector-width N       SIMD lane width for the vectorized kernels
                         (numerics.vector_width case key; default 4).
                         Must be a power of two in 1..=8; results are
                         bitwise identical at every width
  --faults plan.json     fault-injection plan (mfc_mpsim::FaultPlan)
  --checkpoint-every N   checkpoint wave period in steps; any non-zero
                         value routes the run through the fault-tolerant
                         driver
  --ckpt-keep N          checkpoint retention: keep the N newest committed
                         waves per rank (default 2; the newest committed
                         wave is never garbage-collected)
  --failure-policy P     what survivors do about a *permanent* rank death:
                         'revive' (transient semantics; a permanent loss is
                         unrecoverable), 'shrink' (survivor consensus on a
                         smaller decomposition, the last committed wave is
                         redistributed cross-shard), or 'spare' (promote an
                         idle hot spare into the vacant slot)
  --spares N             hot spare ranks provisioned outside the
                         decomposition for --failure-policy spare
  --recovery ladder.json numerical-recovery ladder (mfc_core::RecoveryPolicy
                         JSON) arming the health watchdog with graceful
                         degradation: retry with halved dt, Zhang-Shu
                         limiting, WENO3, Rusanov
  --max-retries N        per-step retry budget for the recovery ladder;
                         arms the default ladder when --recovery is absent
  --trace out.json       record a hierarchical span trace of the run and
                         write it as chrome-trace JSON (load in Perfetto /
                         chrome://tracing, or run mfc-trace-report on it):
                         per-rank timelines of step phases, every kernel
                         launch with its FLOP/byte attributes, messages,
                         collectives, I/O waves, and recovery activity
  --io-wave N            writer-wave width for file-per-process output
                         (io.wave case key; default 128, MFC's production
                         value)

exit codes:
  0  success
  2  usage error or invalid case/configuration
  3  I/O failure (case file, plans, output directory, probes, VTK)
  4  numerical failure (health-watchdog abort after ladder exhaustion)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut validate_only = false;
    let mut dry_run_only = false;
    let mut overlap = false;
    let mut workers: Option<usize> = None;
    let mut vector_width: Option<usize> = None;
    let mut rhs_mode: Option<RhsMode> = None;
    let mut faults: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut recovery: Option<String> = None;
    let mut ckpt_keep: Option<usize> = None;
    let mut failure_policy: Option<mfc_mpsim::FailurePolicy> = None;
    let mut spares: Option<usize> = None;
    let mut max_retries: Option<u32> = None;
    let mut trace: Option<String> = None;
    let mut io_wave: Option<usize> = None;
    let mut path: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            "--validate" => validate_only = true,
            "--dry-run" => dry_run_only = true,
            "--overlap" => overlap = true,
            "--vector-width" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => match mfc_acc::validate_width(n) {
                    Ok(()) => vector_width = Some(n),
                    Err(e) => die(&format!("--vector-width: {e}")),
                },
                _ => die("--vector-width needs a lane count (power of two, <=8)"),
            },
            "--workers" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => workers = Some(n),
                _ => die("--workers needs a positive thread count"),
            },
            "--rhs-mode" => match it.next().map(String::as_str) {
                Some("staged") => rhs_mode = Some(RhsMode::Staged),
                Some("fused") => rhs_mode = Some(RhsMode::Fused),
                _ => die("--rhs-mode needs 'staged' or 'fused'"),
            },
            "--faults" => match it.next() {
                Some(v) => faults = Some(v.clone()),
                None => die("--faults needs a plan file"),
            },
            "--checkpoint-every" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => checkpoint_every = Some(n),
                _ => die("--checkpoint-every needs a step count"),
            },
            "--ckpt-keep" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => ckpt_keep = Some(n),
                _ => die("--ckpt-keep needs a positive wave count"),
            },
            "--failure-policy" => match it.next() {
                Some(v) => match mfc_mpsim::FailurePolicy::from_flag(v) {
                    Ok(p) => failure_policy = Some(p),
                    Err(e) => die(&e),
                },
                None => die("--failure-policy needs 'revive', 'shrink', or 'spare'"),
            },
            "--spares" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => spares = Some(n),
                _ => die("--spares needs a rank count"),
            },
            "--recovery" => match it.next() {
                Some(v) => recovery = Some(v.clone()),
                None => die("--recovery needs a ladder file"),
            },
            "--max-retries" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => max_retries = Some(n),
                _ => die("--max-retries needs a retry count"),
            },
            "--trace" => match it.next() {
                Some(v) => trace = Some(v.clone()),
                None => die("--trace needs an output path"),
            },
            "--io-wave" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => io_wave = Some(n),
                _ => die("--io-wave needs a positive wave width"),
            },
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    die("only one case file may be given");
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        eprintln!("see `mfc-run --help` or crates/cli/src/lib.rs for the schema");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: i/o failure: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    let mut case = match CaseFile::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    // Command-line flags override the case file.
    if let Some(mode) = rhs_mode {
        case.numerics.mode = mode;
    }
    if overlap {
        case.numerics.overlap = true;
    }
    if let Some(n) = workers {
        case.numerics.workers = n;
    }
    if let Some(w) = vector_width {
        case.numerics.vector_width = w;
    }
    if let Some(plan) = faults {
        case.run.faults = Some(plan.into());
    }
    if let Some(every) = checkpoint_every {
        case.run.checkpoint_every = every;
    }
    if let Some(ladder) = recovery {
        case.run.recovery = Some(ladder.into());
    }
    if let Some(n) = ckpt_keep {
        case.run.ckpt_keep = n;
    }
    if let Some(p) = failure_policy {
        case.run.failure_policy = p;
    }
    if let Some(n) = spares {
        case.run.spares = n;
    }
    if let Some(n) = max_retries {
        case.run.max_retries = Some(n);
    }
    if let Some(t) = trace {
        case.run.trace = Some(t.into());
    }
    if let Some(w) = io_wave {
        case.io.wave = w;
    }
    if dry_run_only {
        match dry_run(&case) {
            Ok(r) => {
                println!(
                    "case '{}' admissible: {:?} cells x {} eqs, {} rank(s) as {:?} \
                     ({} ghost layers), {} worker(s), vector width {}, {}",
                    r.name,
                    r.cells,
                    r.neq,
                    r.ranks,
                    r.dims,
                    r.ghost_layers,
                    r.workers,
                    r.vector_width,
                    match r.t_end {
                        Some(t) => format!("until t = {t:.4e}"),
                        None => format!("{} steps", r.steps),
                    }
                );
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(match e {
                    RunError::Io(_) => 3,
                    _ => 2,
                });
            }
        }
    }
    if validate_only {
        match case
            .to_case()
            .and_then(|_| case.numerics.to_solver_config())
        {
            Ok(_) => {
                println!(
                    "case '{}' is valid ({:?} cells, {} fluids, {} patches)",
                    case.name,
                    case.cells,
                    case.fluids.len(),
                    case.patches.len()
                );
                return;
            }
            Err(e) => {
                eprintln!("error: invalid configuration: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "running case '{}' ({:?} cells, {} fluids)",
        case.name,
        case.cells,
        case.fluids.len()
    );
    match run_case(&case) {
        Ok(s) => {
            println!(
                "done: {} steps, t = {:.4e}, {} cells, grind {:.1} ns/cell/PDE/RHS",
                s.steps, s.time, s.cells, s.grind_ns
            );
            if !s.resilience.is_empty() {
                println!("resilience events:");
                print!("{}", s.resilience);
            }
            if let Some(p) = s.vtk_path {
                println!("wrote {}", p.display());
            }
            if let Some(p) = &case.run.trace {
                println!("wrote trace {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(match e {
                RunError::Config(_) => 2,
                RunError::Io(_) => 3,
                RunError::Numerical(_) => 4,
            });
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}
