//! `mfc-run <case.json>` — execute a JSON case file.

use mfc_cli::{run_case, CaseFile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let validate_only = args.iter().any(|a| a == "--validate");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: mfc-run <case.json> [--validate]");
        eprintln!("see crates/cli/src/lib.rs for the case-file schema");
        std::process::exit(2);
    };
    let case = match CaseFile::from_path(std::path::Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if validate_only {
        match case.to_case().and_then(|_| case.numerics.to_solver_config()) {
            Ok(_) => {
                println!(
                    "case '{}' is valid ({:?} cells, {} fluids, {} patches)",
                    case.name,
                    case.cells,
                    case.fluids.len(),
                    case.patches.len()
                );
                return;
            }
            Err(e) => {
                eprintln!("invalid case: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("running case '{}' ({:?} cells, {} fluids)", case.name, case.cells, case.fluids.len());
    match run_case(&case) {
        Ok(s) => {
            println!(
                "done: {} steps, t = {:.4e}, {} cells, grind {:.1} ns/cell/PDE/RHS",
                s.steps, s.time, s.cells, s.grind_ns
            );
            if let Some(p) = s.vtk_path {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
