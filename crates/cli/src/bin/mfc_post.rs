//! `mfc-post` — host-side post-processing, the paper's "host code reads
//! the MPI I/O binary files and creates SILO files" step (§III-A).
//!
//! Reassembles per-rank wave files into the global field and writes a
//! legacy-VTK database.
//!
//! Usage:
//! ```text
//! mfc-post <dir> <step> <nx> <ny> <nz> <nfluids> <ndim> <px> <py> <pz> <out.vtk>
//! ```

use mfc_core::eqidx::EqIdx;
use mfc_core::grid::Grid;
use mfc_core::output::{postprocess_wave_files, write_vtk_rectilinear};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 11 {
        eprintln!(
            "usage: mfc-post <dir> <step> <nx> <ny> <nz> <nfluids> <ndim> <px> <py> <pz> <out.vtk>"
        );
        std::process::exit(2);
    }
    let dir = std::path::PathBuf::from(&args[0]);
    let parse = |s: &String| -> usize {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: '{s}' is not a non-negative integer");
            std::process::exit(2);
        })
    };
    let step = parse(&args[1]);
    let n = [parse(&args[2]), parse(&args[3]), parse(&args[4])];
    let nfluids = parse(&args[5]);
    let ndim = parse(&args[6]);
    let dims = [parse(&args[7]), parse(&args[8]), parse(&args[9])];
    let out = std::path::PathBuf::from(&args[10]);

    let eq = EqIdx::new(nfluids, ndim);
    let gf = match postprocess_wave_files(&dir, step, n, eq, dims) {
        Ok(gf) => gf,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "reassembled {}x{}x{} cells x {} equations from {} rank files",
        n[0],
        n[1],
        n[2],
        gf.neq,
        dims.iter().product::<usize>()
    );

    // Unit-box grid: cell extents are what visualization needs; physical
    // extents can be rescaled in the viewer.
    let grid = Grid::uniform(n, [0.0; 3], [1.0, 1.0, 1.0]);
    let mut fields: Vec<(String, usize)> = Vec::new();
    for f in 0..eq.nf() {
        fields.push((format!("alpha_rho_{f}"), eq.cont(f)));
    }
    for d in 0..eq.ndim() {
        fields.push((format!("momentum_{d}"), eq.mom(d)));
    }
    fields.push(("energy".to_string(), eq.energy()));
    for a in 0..eq.n_adv() {
        fields.push((format!("alpha_{a}"), eq.adv(a)));
    }
    let refs: Vec<(&str, usize)> = fields.iter().map(|(s, i)| (s.as_str(), *i)).collect();
    if let Err(e) = write_vtk_rectilinear(&out, &grid, &gf, &refs) {
        eprintln!("error writing {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());
}
