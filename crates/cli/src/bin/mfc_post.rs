//! `mfc-post` — host-side post-processing, the paper's "host code reads
//! the MPI I/O binary files and creates SILO files" step (§III-A).
//!
//! Reassembles per-rank wave files into the global field and writes a
//! legacy-VTK database.
//!
//! Usage:
//! ```text
//! mfc-post <dir> <step> <nx> <ny> <nz> <nfluids> <ndim> <px> <py> <pz> <out.vtk>
//! mfc-post --case <case.json> <step> <out.vtk>
//! ```
//!
//! The `--case` form re-derives the wave directory, global extents, and
//! rank decomposition from the case file that produced the run. Because
//! post-processing is a pure byte reshuffle — no kernels run — a case
//! file that explicitly pins `numerics.vector_width` is rejected here as
//! a config error: the key cannot affect this tool's output and its
//! presence usually means the wrong file was passed.

use mfc_cli::CaseFile;
use mfc_core::eqidx::EqIdx;
use mfc_core::grid::Grid;
use mfc_core::output::{postprocess_wave_files, write_vtk_rectilinear};
use mfc_mpsim::best_block_dims;

const USAGE: &str = "usage: mfc-post <dir> <step> <nx> <ny> <nz> <nfluids> <ndim> <px> <py> <pz> <out.vtk>\n       mfc-post --case <case.json> <step> <out.vtk>";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct PostJob {
    dir: std::path::PathBuf,
    step: usize,
    n: [usize; 3],
    eq: EqIdx,
    dims: [usize; 3],
    out: std::path::PathBuf,
}

/// The `--case` form: everything about the run geometry comes from the
/// case file, exactly as `mfc-run` derived it.
fn job_from_case(args: &[String]) -> PostJob {
    if args.len() != 3 {
        die("--case needs <case.json> <step> <out.vtk>");
    }
    let path = std::path::PathBuf::from(&args[0]);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(3);
    });
    // Post-processing runs no kernels, so a case that explicitly pins
    // the SIMD lane width is using the wrong knob for this tool.
    let raw: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("case file parse error: {e}")));
    if raw
        .get("numerics")
        .and_then(|n| n.get("vector_width"))
        .is_some()
    {
        die("numerics.vector_width is meaningless for post-processing \
             (no kernels run); remove it from the case file or use \
             `mfc-run --vector-width`");
    }
    let case = CaseFile::from_json(&text).unwrap_or_else(|e| die(&e));
    let builder = case.to_case().unwrap_or_else(|e| die(&e));
    let step = args[1].parse::<usize>().unwrap_or_else(|_| {
        die(&format!("'{}' is not a non-negative integer", args[1]));
    });
    PostJob {
        dir: case.output.dir.join("waves"),
        step,
        n: case.cells,
        eq: builder.eq(),
        dims: best_block_dims(case.run.ranks, case.cells),
        out: std::path::PathBuf::from(&args[2]),
    }
}

/// The positional form: geometry spelled out on the command line.
fn job_from_args(args: &[String]) -> PostJob {
    if args.len() != 11 {
        die("expected 11 positional arguments");
    }
    let parse = |s: &String| -> usize {
        s.parse()
            .unwrap_or_else(|_| die(&format!("'{s}' is not a non-negative integer")))
    };
    let nfluids = parse(&args[5]);
    let ndim = parse(&args[6]);
    PostJob {
        dir: std::path::PathBuf::from(&args[0]),
        step: parse(&args[1]),
        n: [parse(&args[2]), parse(&args[3]), parse(&args[4])],
        eq: EqIdx::new(nfluids, ndim),
        dims: [parse(&args[7]), parse(&args[8]), parse(&args[9])],
        out: std::path::PathBuf::from(&args[10]),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let job = match args.first().map(|s| s.as_str()) {
        Some("--case") => job_from_case(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return;
        }
        _ => job_from_args(&args),
    };
    let PostJob {
        dir,
        step,
        n,
        eq,
        dims,
        out,
    } = job;

    let gf = match postprocess_wave_files(&dir, step, n, eq, dims) {
        Ok(gf) => gf,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "reassembled {}x{}x{} cells x {} equations from {} rank files",
        n[0],
        n[1],
        n[2],
        gf.neq,
        dims.iter().product::<usize>()
    );

    // Unit-box grid: cell extents are what visualization needs; physical
    // extents can be rescaled in the viewer.
    let grid = Grid::uniform(n, [0.0; 3], [1.0, 1.0, 1.0]);
    let mut fields: Vec<(String, usize)> = Vec::new();
    for f in 0..eq.nf() {
        fields.push((format!("alpha_rho_{f}"), eq.cont(f)));
    }
    for d in 0..eq.ndim() {
        fields.push((format!("momentum_{d}"), eq.mom(d)));
    }
    fields.push(("energy".to_string(), eq.energy()));
    for a in 0..eq.n_adv() {
        fields.push((format!("alpha_{a}"), eq.adv(a)));
    }
    let refs: Vec<(&str, usize)> = fields.iter().map(|(s, i)| (s.as_str(), *i)).collect();
    if let Err(e) = write_vtk_rectilinear(&out, &grid, &gf, &refs) {
        eprintln!("error writing {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());
}
