//! `mfc-sched` — deterministic ensemble execution engine.
//!
//! The paper's campaigns (Wilfong et al., SC24) batch many MFC cases
//! onto a fixed Frontier/Summit allocation through the machine's batch
//! queue. This crate is the in-process substitute: a scheduler that
//! admits, queues, and runs many simulation jobs concurrently on a
//! shared worker budget — the dispatch-loop shape of a request-serving
//! system rather than a one-case-per-process CLI.
//!
//! The pieces:
//!
//! * [`JobSpec`] — a case file plus per-job overrides (priority, worker
//!   cap, vector width, RHS mode, step budget, deadline), moving through
//!   the [`JobState`] machine
//!   `Queued → Admitted → Running → {Done, Failed, Cancelled, TimedOut}`.
//! * [`AdmissionQueue`] — bounded, with typed backpressure
//!   ([`SchedError::QueueFull`]) and priority scheduling with aging so
//!   low-priority jobs cannot starve. Malformed jobs are rejected at
//!   enqueue by the same deep validation as `mfc-run --dry-run`.
//! * an elastic shared worker pool ([`pool::partition`]) — a global
//!   worker budget re-partitioned across the running jobs whenever one
//!   arrives or finishes. Shares change only at step boundaries, where
//!   the gang/lane invariance guarantee (results bitwise identical at
//!   every worker count and vector width) makes the resize numerically
//!   invisible: every job's output is byte-identical to a standalone
//!   run, whatever the ensemble did around it.
//! * per-job fault isolation — a job's `SolverError`, I/O failure, or
//!   even panic marks *that job* `Failed`; siblings and the server
//!   process are untouched.
//! * [`Scheduler::run`] returns a [`JobRecord`] ledger (JSONL via
//!   [`write_ledger`]); with a tracer attached, timeline 0 carries
//!   queue-depth/occupancy counters and resize instants while each job's
//!   timeline carries its `job` span and kernel events —
//!   `mfc-trace-report` renders these as the scheduler view.
//!
//! Two front ends drive the same loop through the `mfc-serve` binary:
//!
//! * **manifest mode** — submit a JSON manifest up front, run the loop
//!   with admission already closed ([`Scheduler::run`]), exit when the
//!   pool drains (the PR 9 batch semantics);
//! * **daemon mode** (`--listen`) — a [`server::Server`] accepts TCP
//!   clients speaking the line-delimited JSON [`protocol`]
//!   (`submit`/`status`/`cancel`/`metrics`/`drain`/`shutdown`), each
//!   relayed into the live loop through a [`SchedClient`]
//!   ([`Scheduler::serve`]): streaming admission repartitions the pool
//!   exactly like a departure does, `drain` closes admission and lets
//!   the ensemble finish, `shutdown` cancels cooperatively — either
//!   way the ledger is flushed and the process exits 0.

pub mod job;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use job::{JobRecord, JobSpec, JobState, SchedError, PRIORITY_LIMIT};
pub use protocol::{MetricsSnapshot, ProtocolError, Request, StatusRow};
pub use queue::AdmissionQueue;
pub use scheduler::{write_ledger, SchedClient, SchedConfig, SchedEvents, Scheduler};
pub use server::Server;
