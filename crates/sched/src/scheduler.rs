//! The ensemble scheduler: admission, dispatch, elastic repartition,
//! isolation, and the results ledger.
//!
//! The dispatch core is an *open-system* event loop: one channel carries
//! both job completions and external commands ([`SchedClient`]), so a
//! `submit` arriving over TCP mid-ensemble repartitions the elastic pool
//! exactly the way a departure does. Manifest mode ([`Scheduler::run`])
//! is the same loop started in the draining state — admission is already
//! closed, so it exits when the pre-submitted jobs finish, preserving
//! the PR 9 batch semantics bit for bit.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfc_acc::Context;
use mfc_cli::CaseFile;
use mfc_core::restart::save_checkpoint;
use mfc_core::solver::StepControl;
use mfc_core::Solver;
use mfc_trace::{Category, TraceHandle, Tracer};

use crate::job::{JobRecord, JobSpec, JobState, SchedError, PRIORITY_LIMIT};
use crate::pool::partition;
use crate::protocol::{MetricsSnapshot, StatusRow};
use crate::queue::AdmissionQueue;

/// Scheduler knobs. `budget` is the global worker pool partitioned
/// across running jobs; `queue_cap` bounds the admission queue.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Global worker budget shared by all running jobs (≥ 1). Also the
    /// running-job ceiling: each running job holds at least one worker.
    pub budget: usize,
    /// Bounded admission-queue capacity (≥ 1); a full queue rejects with
    /// [`SchedError::QueueFull`].
    pub queue_cap: usize,
    /// Dispatch rounds a waiting job must sit out per effective priority
    /// point gained (starvation control; see [`AdmissionQueue`]).
    pub aging_rounds: u64,
    /// Per-job artifacts land under `out_dir/<id>_<name>/`.
    pub out_dir: PathBuf,
    /// Write each non-failed job's final state as a CRC'd checkpoint
    /// (`final.ckpt`) — the bitwise-comparable output of the job.
    pub write_checkpoints: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            budget: 1,
            queue_cap: 16,
            aging_rounds: 4,
            out_dir: PathBuf::from("out/serve"),
            write_checkpoints: true,
        }
    }
}

/// What the job thread reports back to the dispatcher.
pub(crate) struct ThreadOutcome {
    state: JobState,
    steps: u64,
    sim_time: f64,
    cpu_ms: f64,
    worker_seconds: f64,
    final_share: usize,
    resizes: u64,
    reason: Option<String>,
    output: Option<PathBuf>,
}

struct JobEntry {
    spec: JobSpec,
    name: String,
    case: CaseFile,
    state: JobState,
    cancel: Arc<AtomicBool>,
    share: Arc<AtomicUsize>,
    submitted: Instant,
    admitted: Option<Instant>,
    record: Option<JobRecord>,
}

/// A command injected into a live event loop, with its reply channel.
pub(crate) enum Command {
    Submit(Box<JobSpec>, mpsc::Sender<Result<u64, SchedError>>),
    Cancel(u64, mpsc::Sender<Result<(), SchedError>>),
    Status(Option<u64>, mpsc::Sender<Result<Vec<StatusRow>, SchedError>>),
    Metrics(mpsc::Sender<MetricsSnapshot>),
    Drain(mpsc::Sender<MetricsSnapshot>),
    Shutdown(mpsc::Sender<MetricsSnapshot>),
}

/// Everything the event loop reacts to, multiplexed on one channel so
/// job completions and client commands interleave in arrival order —
/// no polling, no second wakeup path.
pub(crate) enum Event {
    Done(u64, ThreadOutcome),
    Cmd(Command),
}

/// Cloneable, thread-safe handle into a live scheduler event loop.
///
/// Every method is a synchronous request/reply over the scheduler's
/// event channel: safe to call from any number of server threads while
/// jobs run. Once the loop exits (drain complete / shutdown), every
/// method returns [`SchedError::ShuttingDown`].
#[derive(Clone)]
pub struct SchedClient {
    tx: mpsc::Sender<Event>,
}

/// Receiving half of the event channel; feed it to
/// [`Scheduler::serve`].
pub struct SchedEvents(mpsc::Receiver<Event>);

impl SchedClient {
    /// A fresh command channel: hand the [`SchedClient`] to server
    /// threads and the [`SchedEvents`] to [`Scheduler::serve`].
    pub fn pair() -> (SchedClient, SchedEvents) {
        let (tx, rx) = mpsc::channel();
        (SchedClient { tx }, SchedEvents(rx))
    }

    fn send(&self, cmd: Command) -> Result<(), SchedError> {
        self.tx
            .send(Event::Cmd(cmd))
            .map_err(|_| SchedError::ShuttingDown)
    }

    /// Validate and enqueue a job in the running ensemble (streaming
    /// admission). Same typed rejections as [`Scheduler::submit`].
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Submit(Box::new(spec), rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)?
    }

    /// Cooperatively cancel a queued or running job.
    pub fn cancel(&self, id: u64) -> Result<(), SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Cancel(id, rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)?
    }

    /// One row per job (or just `id`'s row).
    pub fn status(&self, id: Option<u64>) -> Result<Vec<StatusRow>, SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Status(id, rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)?
    }

    /// Live occupancy and outcome counters.
    pub fn metrics(&self) -> Result<MetricsSnapshot, SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Metrics(rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)
    }

    /// Close admission; queued and running jobs still finish, then the
    /// loop exits. Returns the snapshot at the moment drain began.
    pub fn drain(&self) -> Result<MetricsSnapshot, SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Drain(rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)
    }

    /// Close admission *and* cancel every non-terminal job
    /// cooperatively (queued jobs finalize as `Cancelled` immediately;
    /// running jobs stop at their next step boundary), then the loop
    /// exits and the caller flushes the ledger.
    pub fn shutdown(&self) -> Result<MetricsSnapshot, SchedError> {
        let (rtx, rrx) = mpsc::channel();
        self.send(Command::Shutdown(rtx))?;
        rrx.recv().map_err(|_| SchedError::ShuttingDown)
    }
}

/// Deterministic ensemble execution engine (see the crate docs).
///
/// Lifecycle: [`Scheduler::submit`] validates and queues jobs (typed
/// rejection on a malformed job or a full queue), [`Scheduler::cancel`]
/// requests cooperative cancellation, and [`Scheduler::run`] drives the
/// dispatch loop to completion, returning one [`JobRecord`] per
/// submitted job in submission order.
pub struct Scheduler {
    cfg: SchedConfig,
    tracer: Option<Arc<Tracer>>,
    sched_tl: Option<Arc<TraceHandle>>,
    jobs: Vec<JobEntry>,
    queue: AdmissionQueue,
    /// Admission closed: the loop exits once queue and pool are empty.
    draining: bool,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Self {
        let queue = AdmissionQueue::new(cfg.queue_cap, cfg.aging_rounds);
        Scheduler {
            cfg,
            tracer: None,
            sched_tl: None,
            jobs: Vec::new(),
            queue,
            draining: false,
        }
    }

    /// Attach a tracer: timeline 0 carries the scheduler's queue-depth /
    /// occupancy counters and resize instants; timeline `1 + id` carries
    /// each job's `job` span, admit/cancel instants, and kernel events.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.sched_tl = Some(tracer.handle(0));
        self.tracer = Some(tracer);
        self
    }

    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Admission control: load the case, apply the spec's overrides, and
    /// run the same deep validation as `mfc-run --dry-run`. Invalid jobs
    /// are rejected here — at enqueue, not mid-ensemble — and a full
    /// queue pushes back with [`SchedError::QueueFull`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, SchedError> {
        if self.draining {
            return Err(SchedError::Draining);
        }
        // Range-contains rather than .abs(): i64::MIN has no absolute
        // value and must still be a clean typed rejection.
        if !(-PRIORITY_LIMIT..=PRIORITY_LIMIT).contains(&spec.priority) {
            return Err(SchedError::PriorityOutOfRange {
                priority: spec.priority,
                limit: PRIORITY_LIMIT,
            });
        }
        let job_label = spec
            .name
            .clone()
            .unwrap_or_else(|| spec.case.display().to_string());
        let reject = |reason: String| SchedError::Rejected {
            job: job_label.clone(),
            reason,
        };
        let mut case = CaseFile::from_path(&spec.case).map_err(&reject)?;
        if let Some(w) = spec.workers {
            case.numerics.workers = w;
        }
        if let Some(vw) = spec.vector_width {
            case.numerics.vector_width = vw;
        }
        if let Some(mode) = spec.rhs_mode {
            case.numerics.mode = mode;
        }
        if let Some(ov) = spec.overlap {
            case.numerics.overlap = ov;
        }
        if let Some(steps) = spec.max_steps {
            case.run.steps = steps;
        }
        mfc_cli::dry_run(&case).map_err(|e| reject(e.to_string()))?;
        if case.run.ranks > 1 {
            return Err(reject(format!(
                "run.ranks = {} — the ensemble scheduler drives the serial-rank engine",
                case.run.ranks
            )));
        }
        if case.run.checkpoint_every > 0 || case.run.faults.is_some() {
            return Err(reject(
                "fault-tolerant distributed features (run.faults / run.checkpoint_every) \
                 are not available inside the ensemble scheduler"
                    .into(),
            ));
        }
        let id = self.jobs.len() as u64;
        self.queue.push(id, spec.priority)?;
        let name = spec.name.clone().unwrap_or_else(|| case.name.clone());
        self.jobs.push(JobEntry {
            spec,
            name,
            case,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            share: Arc::new(AtomicUsize::new(1)),
            submitted: Instant::now(),
            admitted: None,
            record: None,
        });
        if let Some(tl) = &self.sched_tl {
            tl.counter("queue_depth", self.queue.len() as f64);
        }
        Ok(id)
    }

    /// Request cooperative cancellation. A queued job is finalized
    /// immediately; a running job observes the flag at its next step
    /// boundary. Terminal jobs return [`SchedError::Terminal`].
    pub fn cancel(&mut self, id: u64) -> Result<(), SchedError> {
        let idx = id as usize;
        if idx >= self.jobs.len() {
            return Err(SchedError::UnknownJob { id });
        }
        if self.jobs[idx].state.is_terminal() {
            return Err(SchedError::Terminal { id });
        }
        self.jobs[idx].cancel.store(true, Ordering::Relaxed);
        if self.jobs[idx].state == JobState::Queued && self.queue.remove(id) {
            self.finalize_queued(idx, JobState::Cancelled, "cancelled while queued");
            if let Some(tl) = &self.sched_tl {
                tl.counter("queue_depth", self.queue.len() as f64);
                tl.instant("cancel", Category::Phase);
            }
        }
        Ok(())
    }

    /// Terminal record for a job that never left the queue.
    fn finalize_queued(&mut self, idx: usize, state: JobState, reason: &str) {
        let e = &mut self.jobs[idx];
        e.state = state;
        let wall = e.submitted.elapsed().as_secs_f64() * 1e3;
        e.record = Some(JobRecord {
            id: idx as u64,
            job: e.name.clone(),
            case: e.spec.case.clone(),
            priority: e.spec.priority,
            state,
            steps: 0,
            sim_time: 0.0,
            wall_ms: wall,
            wait_ms: wall,
            cpu_ms: 0.0,
            worker_seconds: 0.0,
            final_share: 0,
            resizes: 0,
            reason: Some(reason.to_string()),
            output: None,
        });
    }

    /// Recompute every running job's worker share (pure-function
    /// partition of the budget in admission order, respecting elastic
    /// caps) and publish the targets; jobs apply them at their next step
    /// boundary. Returns whether any share changed.
    fn repartition(&mut self, running: &[u64]) -> bool {
        let caps: Vec<usize> = running
            .iter()
            .map(|&id| self.jobs[id as usize].spec.workers.unwrap_or(usize::MAX))
            .collect();
        let shares = partition(self.cfg.budget, &caps);
        let mut changed = false;
        for (&id, &s) in running.iter().zip(shares.iter()) {
            if self.jobs[id as usize].share.swap(s, Ordering::Relaxed) != s {
                changed = true;
            }
        }
        if changed {
            if let Some(tl) = &self.sched_tl {
                tl.instant("resize", Category::Phase);
            }
        }
        if let Some(tl) = &self.sched_tl {
            tl.counter("busy_workers", shares.iter().sum::<usize>() as f64);
        }
        changed
    }

    fn emit_occupancy(&self, running: usize) {
        if let Some(tl) = &self.sched_tl {
            tl.counter("queue_depth", self.queue.len() as f64);
            tl.counter("running_jobs", running as f64);
        }
    }

    /// Drive a pre-submitted manifest to completion (admission already
    /// closed): admit while worker slots are free, react to
    /// completions, repartition the pool on every arrival and
    /// departure. Returns the ledger in submission order.
    pub fn run(&mut self) -> Vec<JobRecord> {
        let (client, events) = SchedClient::pair();
        self.draining = true;
        self.serve_loop(&client, events)
    }

    /// Daemon mode: the same event loop with admission *open* — jobs
    /// stream in through `SchedClient` handles (typically held by TCP
    /// reader threads) while the ensemble runs, and the loop exits only
    /// after a `drain` or `shutdown` command once the pool is idle.
    /// Returns the ledger in submission order.
    pub fn serve(&mut self, client: &SchedClient, events: SchedEvents) -> Vec<JobRecord> {
        self.draining = false;
        self.serve_loop(client, events)
    }

    fn serve_loop(&mut self, client: &SchedClient, events: SchedEvents) -> Vec<JobRecord> {
        let budget = self.cfg.budget.max(1);
        let mut handles: HashMap<u64, JoinHandle<()>> = HashMap::new();
        let mut running: Vec<u64> = Vec::new();
        loop {
            // Dispatch: each admission holds a real share ≥ 1 because
            // running stays strictly under the budget — the partition's
            // zero-share tail is exactly the set of jobs left queued.
            while running.len() < budget {
                let Some(id) = self.queue.pop() else { break };
                let idx = id as usize;
                self.jobs[idx].state = JobState::Admitted;
                self.jobs[idx].admitted = Some(Instant::now());
                running.push(id);
                self.repartition(&running);
                let handle = self.spawn_job(id, client.tx.clone());
                handles.insert(id, handle);
                self.jobs[idx].state = JobState::Running;
            }
            self.emit_occupancy(running.len());
            if self.draining && running.is_empty() && self.queue.is_empty() {
                break;
            }
            // Blocks until a job finishes or a client commands; with
            // admission open and the pool idle this is the daemon's
            // parked state. Err is unreachable while `client` lives —
            // exit defensively rather than panic.
            let Ok(event) = events.0.recv() else { break };
            match event {
                Event::Done(id, outcome) => {
                    if let Some(h) = handles.remove(&id) {
                        let _ = h.join();
                    }
                    running.retain(|&r| r != id);
                    self.finalize_run(id as usize, outcome);
                    if !running.is_empty() {
                        self.repartition(&running);
                    }
                    self.emit_occupancy(running.len());
                }
                Event::Cmd(cmd) => self.handle_cmd(cmd, &running),
            }
        }
        self.ledger()
    }

    /// Serve one client command against live state. Replies are
    /// best-effort: a vanished requester must not take the loop down.
    fn handle_cmd(&mut self, cmd: Command, running: &[u64]) {
        match cmd {
            Command::Submit(spec, reply) => {
                let r = self.submit(*spec);
                let _ = reply.send(r);
            }
            Command::Cancel(id, reply) => {
                let r = self.cancel(id);
                let _ = reply.send(r);
            }
            Command::Status(id, reply) => {
                let _ = reply.send(self.status_rows(id));
            }
            Command::Metrics(reply) => {
                let _ = reply.send(self.metrics(running));
            }
            Command::Drain(reply) => {
                self.draining = true;
                if let Some(tl) = &self.sched_tl {
                    tl.instant("drain", Category::Phase);
                }
                let _ = reply.send(self.metrics(running));
            }
            Command::Shutdown(reply) => {
                self.draining = true;
                if let Some(tl) = &self.sched_tl {
                    tl.instant("shutdown", Category::Phase);
                }
                // Queued jobs finalize as Cancelled right now; running
                // jobs observe their flag at the next step boundary and
                // come back through Event::Done like any completion.
                let queued: Vec<u64> = self
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.state == JobState::Queued)
                    .map(|(i, _)| i as u64)
                    .collect();
                for id in queued {
                    let _ = self.cancel(id);
                }
                for &id in running {
                    self.jobs[id as usize].cancel.store(true, Ordering::Relaxed);
                }
                let _ = reply.send(self.metrics(running));
            }
        }
    }

    /// The live snapshot served by the `metrics` command — computed
    /// from the same state the trace counters record, so the wire view
    /// and the trace view cannot disagree.
    fn metrics(&self, running: &[u64]) -> MetricsSnapshot {
        let budget = self.cfg.budget.max(1);
        let busy: usize = running
            .iter()
            .map(|&id| self.jobs[id as usize].share.load(Ordering::Relaxed))
            .sum::<usize>()
            .min(budget);
        let mut done = 0u64;
        let mut failed = 0u64;
        let mut cancelled = 0u64;
        let mut timed_out = 0u64;
        let mut worker_seconds = 0.0f64;
        for e in &self.jobs {
            match e.state {
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::TimedOut => timed_out += 1,
                _ => {}
            }
            if let Some(r) = &e.record {
                worker_seconds += r.worker_seconds;
            }
        }
        MetricsSnapshot {
            budget,
            queued: self.queue.len(),
            running: running.len(),
            busy_workers: busy,
            idle_workers: budget - busy,
            submitted: self.jobs.len() as u64,
            done,
            failed,
            cancelled,
            timed_out,
            worker_seconds,
            draining: self.draining,
        }
    }

    fn status_rows(&self, id: Option<u64>) -> Result<Vec<StatusRow>, SchedError> {
        let row = |idx: usize| {
            let e = &self.jobs[idx];
            StatusRow {
                id: idx as u64,
                job: e.name.clone(),
                state: e.state,
                steps: e.record.as_ref().map(|r| r.steps),
                reason: e.record.as_ref().and_then(|r| r.reason.clone()),
                output: e.record.as_ref().and_then(|r| r.output.clone()),
            }
        };
        match id {
            Some(id) if (id as usize) < self.jobs.len() => Ok(vec![row(id as usize)]),
            Some(id) => Err(SchedError::UnknownJob { id }),
            None => Ok((0..self.jobs.len()).map(row).collect()),
        }
    }

    fn ledger(&self) -> Vec<JobRecord> {
        self.jobs
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                // Every job that entered the system has a record by now;
                // defend against future states without panicking.
                e.record.clone().or_else(|| {
                    e.state.is_terminal().then(|| JobRecord {
                        id: i as u64,
                        job: e.name.clone(),
                        case: e.spec.case.clone(),
                        priority: e.spec.priority,
                        state: e.state,
                        steps: 0,
                        sim_time: 0.0,
                        wall_ms: 0.0,
                        wait_ms: 0.0,
                        cpu_ms: 0.0,
                        worker_seconds: 0.0,
                        final_share: 0,
                        resizes: 0,
                        reason: None,
                        output: None,
                    })
                })
            })
            .collect()
    }

    fn finalize_run(&mut self, idx: usize, o: ThreadOutcome) {
        let e = &mut self.jobs[idx];
        e.state = o.state;
        let wall = e.submitted.elapsed().as_secs_f64() * 1e3;
        let wait = e
            .admitted
            .map(|a| (a - e.submitted).as_secs_f64() * 1e3)
            .unwrap_or(wall);
        e.record = Some(JobRecord {
            id: idx as u64,
            job: e.name.clone(),
            case: e.spec.case.clone(),
            priority: e.spec.priority,
            state: o.state,
            steps: o.steps,
            sim_time: o.sim_time,
            wall_ms: wall,
            wait_ms: wait,
            cpu_ms: o.cpu_ms,
            worker_seconds: o.worker_seconds,
            final_share: o.final_share,
            resizes: o.resizes,
            reason: o.reason,
            output: o.output,
        });
    }

    fn spawn_job(&self, id: u64, tx: mpsc::Sender<Event>) -> JoinHandle<()> {
        let e = &self.jobs[id as usize];
        let args = JobArgs {
            case: e.case.clone(),
            name: e.name.clone(),
            share: Arc::clone(&e.share),
            cancel: Arc::clone(&e.cancel),
            deadline: e.spec.deadline_ms.map(Duration::from_millis),
            cancel_at_step: e.spec.cancel_at_step,
            fault_at_step: e.spec.fault_at_step,
            out_dir: self.cfg.out_dir.join(format!("{id:02}_{}", e.name)),
            write_checkpoint: self.cfg.write_checkpoints,
            handle: self.tracer.as_ref().map(|t| t.handle(1 + id as usize)),
        };
        std::thread::spawn(move || {
            // Per-job isolation even against a panic: the server process
            // and the sibling jobs must survive anything a job does.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run_job(args)))
                .unwrap_or_else(|p| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job thread panicked".into());
                    ThreadOutcome {
                        state: JobState::Failed,
                        steps: 0,
                        sim_time: 0.0,
                        cpu_ms: 0.0,
                        worker_seconds: 0.0,
                        final_share: 0,
                        resizes: 0,
                        reason: Some(format!("panic: {msg}")),
                        output: None,
                    }
                });
            let _ = tx.send(Event::Done(id, outcome));
        })
    }
}

struct JobArgs {
    case: CaseFile,
    name: String,
    share: Arc<AtomicUsize>,
    cancel: Arc<AtomicBool>,
    deadline: Option<Duration>,
    cancel_at_step: Option<u64>,
    fault_at_step: Option<u64>,
    out_dir: PathBuf,
    write_checkpoint: bool,
    handle: Option<Arc<TraceHandle>>,
}

/// Poison the conservative state so the next step trips the
/// numerical-health watchdog — the injected "fatal fault" of the
/// isolation tests, driven through the solver's real error path.
fn poison_state(solver: &mut Solver) {
    let dom = *solver.domain();
    let slot = dom.eq.energy();
    let cell = dom.interior().next();
    if let Some((i, j, k)) = cell {
        solver.state_mut().set(i, j, k, slot, f64::NAN);
    }
}

fn run_job(args: JobArgs) -> ThreadOutcome {
    let service_start = Instant::now();
    let fail = |reason: String| ThreadOutcome {
        state: JobState::Failed,
        steps: 0,
        sim_time: 0.0,
        cpu_ms: service_start.elapsed().as_secs_f64() * 1e3,
        worker_seconds: 0.0,
        final_share: 0,
        resizes: 0,
        reason: Some(reason),
        output: None,
    };
    // Already validated at admission; a failure here is still isolated.
    let case = match args.case.to_case() {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let cfg = match args.case.numerics.to_solver_config() {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let mut share = args.share.load(Ordering::Relaxed).max(1);
    let mut ctx = Context::with_workers(share).with_vector_width(cfg.vector_width);
    if let Some(h) = &args.handle {
        ctx.set_tracer(Arc::clone(h));
    }
    let job_span = args.handle.as_ref().map(|h| h.span("job", Category::Phase));
    if let Some(h) = &args.handle {
        h.instant("admit", Category::Phase);
    }
    let mut solver = Solver::new(&case, cfg, ctx);
    let t_end = args.case.run.t_end.unwrap_or(f64::INFINITY);
    let budget_steps = if args.case.run.steps == 0 {
        u64::MAX
    } else {
        args.case.run.steps as u64
    };

    let mut resizes = 0u64;
    let mut worker_seconds = 0.0f64;
    let mut last = Instant::now();
    let mut stop_as: Option<JobState> = None;
    let mut fault_pending = args.fault_at_step;
    let mut err: Option<String> = None;

    while solver.time() < t_end && solver.steps() < budget_steps {
        if fault_pending == Some(solver.steps()) {
            poison_state(&mut solver);
            fault_pending = None;
        }
        // One step per call keeps every scheduler check (cancel,
        // deadline, elastic resize) on the step boundary, via the
        // solver's own cooperative control hook.
        let mut ctrl = |_taken: u64, abs: u64| -> StepControl {
            let now = Instant::now();
            worker_seconds += share as f64 * (now - last).as_secs_f64();
            last = now;
            if args.cancel.load(Ordering::Relaxed) || args.cancel_at_step.is_some_and(|c| abs >= c)
            {
                stop_as = Some(JobState::Cancelled);
                return StepControl::Stop;
            }
            if args.deadline.is_some_and(|d| service_start.elapsed() >= d) {
                stop_as = Some(JobState::TimedOut);
                return StepControl::Stop;
            }
            let target = args.share.load(Ordering::Relaxed).max(1);
            if target != share {
                share = target;
                resizes += 1;
                return StepControl::Resize(target);
            }
            StepControl::Continue
        };
        match solver.run_controlled(1, &mut ctrl) {
            Ok(0) => break, // the controller said Stop
            Ok(_) => {}
            Err(e) => {
                err = Some(e.to_string());
                break;
            }
        }
    }
    worker_seconds += share as f64 * last.elapsed().as_secs_f64();
    solver.context().flush_ledger_to_trace();

    let (state, reason) = match (err, stop_as) {
        (Some(e), _) => (JobState::Failed, Some(e)),
        (None, Some(JobState::Cancelled)) => (
            JobState::Cancelled,
            Some(format!("cancelled at step {}", solver.steps())),
        ),
        (None, Some(JobState::TimedOut)) => (
            JobState::TimedOut,
            Some(format!("deadline exceeded at step {}", solver.steps())),
        ),
        _ => (JobState::Done, None),
    };
    if let Some(h) = &args.handle {
        match state {
            JobState::Cancelled => h.instant("cancel", Category::Phase),
            JobState::TimedOut => h.instant("deadline", Category::Phase),
            JobState::Failed => h.instant("job_failed", Category::Phase),
            _ => {}
        }
    }
    drop(job_span);

    // The job's bitwise-comparable artifact: its final state as a CRC'd
    // checkpoint. Failed jobs write nothing (their state is the last
    // accepted q^n, not a result).
    let mut output = None;
    let mut state = state;
    let mut reason = reason;
    if args.write_checkpoint && state != JobState::Failed {
        let path = args.out_dir.join("final.ckpt");
        let write = std::fs::create_dir_all(&args.out_dir)
            .map_err(|e| format!("cannot create job output dir: {e}"))
            .and_then(|()| {
                save_checkpoint(&path, solver.state(), solver.time(), solver.steps())
                    .map_err(|e| format!("checkpoint write failed: {e}"))
            });
        match write {
            Ok(()) => output = Some(path),
            Err(e) => {
                // An I/O fault is the job's own failure, not the server's.
                state = JobState::Failed;
                reason = Some(format!("{} ({e})", args.name));
            }
        }
    }

    ThreadOutcome {
        state,
        steps: solver.steps(),
        sim_time: solver.time(),
        cpu_ms: service_start.elapsed().as_secs_f64() * 1e3,
        worker_seconds,
        final_share: share,
        resizes,
        reason,
        output,
    }
}

/// Write the ledger as JSON-lines: one [`JobRecord`] per line, in
/// submission order.
pub fn write_ledger(path: &Path, records: &[JobRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in records {
        let line = serde_json::to_string(r)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writeln!(w, "{line}")?;
    }
    w.flush()
}
