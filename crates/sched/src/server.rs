//! TCP front end for the daemonized scheduler: `std::net` only, one
//! blocking accept thread plus one reader thread per client.
//!
//! Each connection speaks the line-delimited JSON protocol of
//! [`crate::protocol`]; every frame is answered on the same connection
//! in order. Client misbehavior is contained by construction:
//!
//! * a malformed frame gets a typed `malformed_frame` error *response*
//!   and the connection stays open;
//! * a disconnect mid-frame (bytes without a final newline at EOF) is
//!   detected and dropped — there is no peer left to answer;
//! * a reader thread only ever touches its own connection and a cloned
//!   [`SchedClient`], so nothing a client does can reach the scheduler
//!   loop except as a typed command.
//!
//! With a tracer attached, `client_connect` / `client_disconnect`
//! instants land on the scheduler timeline (0), interleaved with the
//! queue-depth and occupancy counters — `mfc-trace-report` counts them
//! in the scheduler view.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mfc_trace::{Category, TraceHandle};
use serde_json::json;

use crate::protocol::{self, Request};
use crate::scheduler::SchedClient;

/// A listening daemon front end. Binding succeeds before any client
/// traffic; [`Server::stop`] (also run on drop) unblocks the accept
/// loop and joins it.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting clients, each served by its own reader thread holding
    /// a clone of `sched`.
    pub fn bind(
        addr: &str,
        sched: SchedClient,
        tl: Option<Arc<TraceHandle>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("mfc-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let sched = sched.clone();
                    let tl = tl.clone();
                    // Reader threads are detached: they exit on their
                    // client's EOF, and after the scheduler loop ends
                    // every command they relay answers ShuttingDown.
                    let _ = std::thread::Builder::new()
                        .name("mfc-serve-client".into())
                        .spawn(move || serve_client(stream, &sched, tl.as_deref()));
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new clients and join the accept thread. Existing
    /// connections keep their reader threads until they disconnect;
    /// their commands fail typed once the scheduler loop is gone.
    pub fn stop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.stop.store(true, Ordering::Relaxed);
            // The accept loop blocks in `incoming()`; a throwaway
            // connection wakes it to observe the stop flag.
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_client(stream: TcpStream, sched: &SchedClient, tl: Option<&TraceHandle>) {
    if let Some(tl) = tl {
        tl.instant("client_connect", Category::Phase);
    }
    let mut disconnect_kind = "client_disconnect";
    if let Ok(read_half) = stream.try_clone() {
        let mut reader = BufReader::new(read_half);
        let mut out = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break, // clean EOF
                Ok(_) if !line.ends_with('\n') => {
                    // Bytes but no newline before EOF: the client died
                    // mid-frame. Nothing is answerable — drop the
                    // partial frame, never feed it to the scheduler.
                    disconnect_kind = "client_disconnect_midframe";
                    break;
                }
                Ok(_) => {
                    if line.trim().is_empty() {
                        continue; // blank keep-alive line
                    }
                    let resp = handle_line(&line, sched);
                    if out
                        .write_all(resp.as_bytes())
                        .and_then(|()| out.write_all(b"\n"))
                        .and_then(|()| out.flush())
                        .is_err()
                    {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
    if let Some(tl) = tl {
        tl.instant(disconnect_kind, Category::Phase);
    }
}

/// One frame in, one response line out (no trailing newline).
pub fn handle_line(line: &str, sched: &SchedClient) -> String {
    let req = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => return protocol::error_response(&e),
    };
    match req {
        Request::Submit(spec) => match sched.submit(spec) {
            Ok(id) => protocol::ok_response(json!({ "id": id })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Status(id) => match sched.status(id) {
            Ok(rows) => protocol::ok_response(json!({ "jobs": serde_json::to_value(&rows) })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Cancel(id) => match sched.cancel(id) {
            Ok(()) => protocol::ok_response(json!({ "cancelled": id })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Metrics => match sched.metrics() {
            Ok(m) => protocol::ok_response(json!({ "metrics": serde_json::to_value(&m) })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Drain => match sched.drain() {
            Ok(m) => protocol::ok_response(json!({
                "draining": true,
                "metrics": serde_json::to_value(&m)
            })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Shutdown => match sched.shutdown() {
            Ok(m) => protocol::ok_response(json!({
                "shutting_down": true,
                "metrics": serde_json::to_value(&m)
            })),
            Err(e) => protocol::error_response(&e.into()),
        },
        Request::Ping => protocol::ok_response(json!({ "pong": true })),
    }
}
