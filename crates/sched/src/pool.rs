//! Elastic worker-pool arithmetic: partition a global worker budget
//! across the running jobs.
//!
//! The partition is a pure function of `(budget, caps)` — like
//! `gang_blocks` one layer down — so every repartition (on admission or
//! completion) is deterministic and replayable. Every running job gets at
//! least one worker; the remainder is dealt round-robin in admission
//! order to jobs still under their elastic cap. Shares only change at
//! step boundaries, where worker-count invariance makes the resize
//! bitwise-safe.

/// Worker shares for jobs in admission order, respecting per-job caps.
///
/// Guarantees (for `caps.len() ≤ budget`): every share ≥ 1, shares sum to
/// at most `budget`, no share exceeds `max(cap, 1)`, and the full budget
/// is used whenever caps allow.
pub fn partition(budget: usize, caps: &[usize]) -> Vec<usize> {
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    let budget = budget.max(n);
    let mut share = vec![1usize; n];
    let mut left = budget - n;
    while left > 0 {
        let mut gave = false;
        for i in 0..n {
            if left == 0 {
                break;
            }
            if share[i] < caps[i].max(1) {
                share[i] += 1;
                left -= 1;
                gave = true;
            }
        }
        if !gave {
            break;
        }
    }
    share
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_when_uncapped() {
        assert_eq!(partition(8, &[usize::MAX; 4]), vec![2, 2, 2, 2]);
        assert_eq!(partition(8, &[usize::MAX; 8]), vec![1; 8]);
    }

    #[test]
    fn remainder_goes_to_earliest_admitted() {
        assert_eq!(partition(7, &[usize::MAX; 3]), vec![3, 2, 2]);
    }

    #[test]
    fn caps_redistribute_to_uncapped_jobs() {
        assert_eq!(partition(8, &[1, usize::MAX, 2]), vec![1, 5, 2]);
    }

    #[test]
    fn all_capped_leaves_budget_unused() {
        assert_eq!(partition(16, &[1, 1]), vec![1, 1]);
    }

    #[test]
    fn every_job_keeps_one_worker_and_budget_is_respected() {
        for budget in 1..=12usize {
            for n in 1..=budget {
                let caps = vec![3usize; n];
                let s = partition(budget, &caps);
                assert!(s.iter().all(|&w| (1..=3).contains(&w)));
                assert!(s.iter().sum::<usize>() <= budget);
            }
        }
    }
}
