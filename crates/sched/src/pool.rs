//! Elastic worker-pool arithmetic: partition a global worker budget
//! across the running jobs.
//!
//! The partition is a pure function of `(budget, caps)` — like
//! `gang_blocks` one layer down — so every repartition (on admission or
//! completion) is deterministic and replayable. Jobs that fit the budget
//! get at least one worker; the remainder is dealt round-robin in
//! admission order to jobs still under their elastic cap. Shares only
//! change at step boundaries, where worker-count invariance makes the
//! resize bitwise-safe.
//!
//! When the budget is smaller than the number of jobs, the jobs past the
//! budget (in admission order) get a share of **0** — the partition
//! never over-subscribes the budget to conjure a worker per job. The
//! scheduler's dispatch loop enforces the matching invariant: a job is
//! only admitted while `running < budget`, so a running job always holds
//! a real share ≥ 1 and an unserviceable job stays queued instead of
//! starting with workers it can never actually get.

/// Worker shares for jobs in admission order, respecting per-job caps.
///
/// Guarantees: shares sum to at most `max(budget, 1)`, no share exceeds
/// `max(cap, 1)`, the first `min(n, budget)` jobs get a share ≥ 1 (later
/// jobs get 0 — the caller must defer dispatching them), and the full
/// budget is used whenever caps allow.
pub fn partition(budget: usize, caps: &[usize]) -> Vec<usize> {
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    let mut left = budget.max(1);
    let mut share = vec![0usize; n];
    // One worker each, in admission order, while the budget lasts. A job
    // past the budget keeps 0 — dispatch must defer it, never start it.
    for s in share.iter_mut() {
        if left == 0 {
            break;
        }
        *s = 1;
        left -= 1;
    }
    // Deal the remainder round-robin to admitted jobs under their cap.
    while left > 0 {
        let mut gave = false;
        for i in 0..n {
            if left == 0 {
                break;
            }
            if share[i] >= 1 && share[i] < caps[i].max(1) {
                share[i] += 1;
                left -= 1;
                gave = true;
            }
        }
        if !gave {
            break;
        }
    }
    share
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_when_uncapped() {
        assert_eq!(partition(8, &[usize::MAX; 4]), vec![2, 2, 2, 2]);
        assert_eq!(partition(8, &[usize::MAX; 8]), vec![1; 8]);
    }

    #[test]
    fn remainder_goes_to_earliest_admitted() {
        assert_eq!(partition(7, &[usize::MAX; 3]), vec![3, 2, 2]);
    }

    #[test]
    fn caps_redistribute_to_uncapped_jobs() {
        assert_eq!(partition(8, &[1, usize::MAX, 2]), vec![1, 5, 2]);
    }

    #[test]
    fn all_capped_leaves_budget_unused() {
        assert_eq!(partition(16, &[1, 1]), vec![1, 1]);
    }

    #[test]
    fn oversubscribed_budget_defers_instead_of_conjuring_workers() {
        // Regression: with more jobs than budget the partition used to
        // inflate the budget to hand every job a phantom worker,
        // over-subscribing the pool (3 shares from a budget of 2). The
        // jobs past the budget must get 0 so dispatch defers them.
        assert_eq!(partition(2, &[usize::MAX; 3]), vec![1, 1, 0]);
        assert_eq!(partition(1, &[4, 4, 4, 4]), vec![1, 0, 0, 0]);
        for budget in 1..=6usize {
            for n in 1..=9usize {
                let s = partition(budget, &vec![usize::MAX; n]);
                assert!(s.iter().sum::<usize>() <= budget.max(1), "{budget}/{n}");
                for (i, &w) in s.iter().enumerate() {
                    assert_eq!(w >= 1, i < budget.max(1), "{budget}/{n} share {i}");
                }
            }
        }
    }

    #[test]
    fn every_admitted_job_keeps_one_worker_and_budget_is_respected() {
        for budget in 1..=12usize {
            for n in 1..=budget {
                let caps = vec![3usize; n];
                let s = partition(budget, &caps);
                assert!(s.iter().all(|&w| (1..=3).contains(&w)));
                assert!(s.iter().sum::<usize>() <= budget);
            }
        }
    }
}
