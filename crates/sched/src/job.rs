//! Job specifications, the job state machine, and the results ledger.

use std::path::PathBuf;

use mfc_core::rhs::RhsMode;
use serde::{Deserialize, Serialize};

/// One requested simulation in an ensemble manifest: a case file plus
/// per-job overrides. Everything except `case` is optional; omitted
/// fields fall back to the case file's own settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Ledger/output name; defaults to the case file's `name`.
    #[serde(default)]
    pub name: Option<String>,
    /// Path to the JSON case file.
    pub case: PathBuf,
    /// Scheduling priority: higher admits sooner. Low-priority jobs age
    /// upward while they wait, so they cannot starve.
    #[serde(default)]
    pub priority: i64,
    /// Elastic worker cap for this job (also overrides
    /// `numerics.workers`). The pool never grows the job beyond this;
    /// results are bitwise identical at every share by the gang/lane
    /// invariance guarantee.
    #[serde(default)]
    pub workers: Option<usize>,
    /// Override `numerics.vector_width` (validated at admission).
    #[serde(default)]
    pub vector_width: Option<usize>,
    /// Override the sweep engine (`numerics.mode`: staged | fused).
    #[serde(default)]
    pub rhs_mode: Option<RhsMode>,
    /// Override `numerics.overlap` (halo-exchange mode; recorded for
    /// parity with `mfc-run` — the in-process engine is serial-rank).
    #[serde(default)]
    pub overlap: Option<bool>,
    /// Step budget override (`run.steps`).
    #[serde(default)]
    pub max_steps: Option<usize>,
    /// Wall-clock deadline measured from admission; the job is marked
    /// `TimedOut` at the first step boundary past it.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Operator cancellation arriving at this step boundary (manifest
    /// form of [`crate::Scheduler::cancel`]; deterministic in tests).
    #[serde(default)]
    pub cancel_at_step: Option<u64>,
    /// Fault injection: poison the state at this step boundary so the
    /// next step trips the numerical-health watchdog — exercises per-job
    /// fault isolation without a custom case.
    #[serde(default)]
    pub fault_at_step: Option<u64>,
}

impl JobSpec {
    /// A plain job for `case` with every override defaulted.
    pub fn new(case: impl Into<PathBuf>) -> Self {
        JobSpec {
            name: None,
            case: case.into(),
            priority: 0,
            workers: None,
            vector_width: None,
            rhs_mode: None,
            overlap: None,
            max_steps: None,
            deadline_ms: None,
            cancel_at_step: None,
            fault_at_step: None,
        }
    }
}

/// The job lifecycle: `Queued → Admitted → Running` and exactly one of
/// the four terminal states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobState {
    /// Validated and waiting in the admission queue.
    Queued,
    /// Popped from the queue; a worker share is reserved.
    Admitted,
    /// Stepping on its share of the worker budget.
    Running,
    /// Reached its step budget / end time.
    Done,
    /// Its own `SolverError` (or I/O fault, or panic) — isolated; the
    /// rest of the ensemble is undisturbed.
    Failed,
    /// Cooperatively cancelled at a step boundary.
    Cancelled,
    /// Blew its wall-clock deadline at a step boundary.
    TimedOut,
}

impl JobState {
    /// No further transitions out of this state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::TimedOut
        )
    }
}

/// One JSONL ledger row: the full accounting for one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Submission-order id (stable across reruns of the same manifest).
    pub id: u64,
    pub job: String,
    pub case: PathBuf,
    pub priority: i64,
    pub state: JobState,
    /// Steps actually taken.
    pub steps: u64,
    /// Simulation time reached.
    pub sim_time: f64,
    /// Turnaround: submit → terminal state.
    pub wall_ms: f64,
    /// Queue wait: submit → admission (terminal in queue ⇒ whole wall).
    pub wait_ms: f64,
    /// Service time: admission → terminal state ("cpu" column of the
    /// ledger — the span the job actually occupied pool workers).
    pub cpu_ms: f64,
    /// ∫ share dt over the service span — what the job consumed of the
    /// shared budget.
    pub worker_seconds: f64,
    /// Worker share when the job reached its terminal state.
    pub final_share: usize,
    /// Elastic resizes the job applied at step boundaries.
    pub resizes: u64,
    /// Failure / cancellation detail (None for Done).
    pub reason: Option<String>,
    /// Final-state checkpoint (bitwise comparable against a standalone
    /// run of the same case), when one was written.
    pub output: Option<PathBuf>,
}

/// Largest admissible `|priority|`. Priorities beyond this are rejected
/// at admission: the queue's aging clock adds effective-priority points
/// for as long as a job waits, and a daemon's clock runs for days — the
/// bound keeps `priority + aged` representable (the arithmetic also
/// saturates defensively, see [`crate::AdmissionQueue`]).
pub const PRIORITY_LIMIT: i64 = 1_000_000_000;

/// Typed scheduler failures. Admission problems are reported to the
/// submitter; nothing in the scheduler panics on a bad job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Backpressure: the bounded admission queue is at capacity.
    QueueFull { cap: usize },
    /// The job failed admission-time validation (schema, bounds, halo
    /// extents, unsupported features) and was rejected at enqueue.
    Rejected { job: String, reason: String },
    /// The job's priority lies outside `±PRIORITY_LIMIT` (aging could
    /// push its effective priority out of range on a long-lived daemon).
    PriorityOutOfRange { priority: i64, limit: i64 },
    /// No job with that id.
    UnknownJob { id: u64 },
    /// The job is already in a terminal state.
    Terminal { id: u64 },
    /// The scheduler is draining: running jobs finish, new submissions
    /// are refused.
    Draining,
    /// The scheduler has shut down (or its event loop is gone); no
    /// further commands are served.
    ShuttingDown,
}

impl SchedError {
    /// Stable machine-readable tag, used as the wire protocol's error
    /// `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            SchedError::QueueFull { .. } => "queue_full",
            SchedError::Rejected { .. } => "rejected",
            SchedError::PriorityOutOfRange { .. } => "priority_out_of_range",
            SchedError::UnknownJob { .. } => "unknown_job",
            SchedError::Terminal { .. } => "terminal",
            SchedError::Draining => "draining",
            SchedError::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::QueueFull { cap } => {
                write!(
                    f,
                    "admission queue full ({cap} jobs); retry after a completion"
                )
            }
            SchedError::Rejected { job, reason } => {
                write!(f, "job '{job}' rejected at admission: {reason}")
            }
            SchedError::PriorityOutOfRange { priority, limit } => {
                write!(
                    f,
                    "priority {priority} out of range (must be within ±{limit})"
                )
            }
            SchedError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            SchedError::Terminal { id } => write!(f, "job {id} already reached a terminal state"),
            SchedError::Draining => write!(f, "scheduler is draining; submission refused"),
            SchedError::ShuttingDown => write!(f, "scheduler has shut down"),
        }
    }
}

impl std::error::Error for SchedError {}
