//! Bounded admission queue: priority order with aging, FIFO tie-break.
//!
//! The queue is the backpressure point of the scheduler: `push` returns a
//! typed [`SchedError::QueueFull`] instead of growing without bound, and
//! `pop` selects by *effective* priority
//!
//! ```text
//! effective(job) = priority + rounds_waited / aging_rounds
//! ```
//!
//! so a low-priority job gains one priority point every `aging_rounds`
//! dispatch decisions it sits out — a continuous stream of high-priority
//! arrivals can delay it, never starve it. Ties break by submission
//! order. Everything is a pure function of the push/pop history, so
//! dispatch order is deterministic and replayable.

use crate::job::SchedError;

#[derive(Debug, Clone)]
struct Waiting {
    id: u64,
    seq: u64,
    priority: i64,
    enq_round: u64,
}

/// See the module docs.
#[derive(Debug)]
pub struct AdmissionQueue {
    cap: usize,
    aging_rounds: u64,
    /// Dispatch decisions made so far (the aging clock).
    rounds: u64,
    seq: u64,
    items: Vec<Waiting>,
}

impl AdmissionQueue {
    /// A queue holding at most `cap` waiting jobs; every `aging_rounds`
    /// dispatch rounds waited adds one effective priority point (both
    /// clamped to ≥ 1).
    pub fn new(cap: usize, aging_rounds: u64) -> Self {
        AdmissionQueue {
            cap: cap.max(1),
            aging_rounds: aging_rounds.max(1),
            rounds: 0,
            seq: 0,
            items: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue a job id. Typed rejection when at capacity — the caller
    /// decides whether to retry, shed, or surface the backpressure.
    pub fn push(&mut self, id: u64, priority: i64) -> Result<(), SchedError> {
        if self.items.len() >= self.cap {
            return Err(SchedError::QueueFull { cap: self.cap });
        }
        let seq = self.seq;
        self.seq += 1;
        self.items.push(Waiting {
            id,
            seq,
            priority,
            enq_round: self.rounds,
        });
        Ok(())
    }

    fn effective(&self, w: &Waiting) -> i64 {
        // Saturating on both the u64→i64 narrowing and the add: admission
        // bounds priorities to ±PRIORITY_LIMIT, but the queue itself must
        // stay total even for a raw push with an extreme priority after
        // the daemon's aging clock has run for a long time.
        let aged = ((self.rounds - w.enq_round) / self.aging_rounds).min(i64::MAX as u64) as i64;
        w.priority.saturating_add(aged)
    }

    /// Dispatch the job with the highest effective priority (FIFO on
    /// ties) and advance the aging clock.
    pub fn pop(&mut self) -> Option<u64> {
        if self.items.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for i in 1..self.items.len() {
            let (a, b) = (&self.items[i], &self.items[best]);
            let (ea, eb) = (self.effective(a), self.effective(b));
            if ea > eb || (ea == eb && a.seq < b.seq) {
                best = i;
            }
        }
        self.rounds += 1;
        Some(self.items.remove(best).id)
    }

    /// Remove a queued job (cancellation before admission). Returns
    /// whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|w| w.id != id);
        self.items.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_at_capacity_with_typed_error() {
        let mut q = AdmissionQueue::new(2, 1);
        q.push(0, 0).unwrap();
        q.push(1, 0).unwrap();
        assert_eq!(q.push(2, 0), Err(SchedError::QueueFull { cap: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let mut q = AdmissionQueue::new(8, 1000);
        q.push(0, 0).unwrap();
        q.push(1, 5).unwrap();
        q.push(2, 5).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn aging_prevents_starvation() {
        // A priority-0 job against an endless stream of priority-3
        // arrivals: with aging_rounds = 2 it gains a point every two
        // dispatches and must win within a bounded number of rounds.
        let mut q = AdmissionQueue::new(64, 2);
        q.push(0, 0).unwrap();
        for (round, next_id) in (1u64..=32).enumerate() {
            q.push(next_id, 3).unwrap();
            if q.pop() == Some(0) {
                assert!(round >= 5, "won before aging could have caught up");
                return;
            }
        }
        panic!("low-priority job starved for 32 rounds despite aging");
    }

    #[test]
    fn extreme_priorities_age_without_overflow() {
        // Regression: effective priority was computed with unchecked i64
        // arithmetic, so an i64::MAX priority overflowed (debug panic /
        // release wraparound to i64::MIN, inverting the order) as soon as
        // the aging clock credited the waiter a single point.
        let mut q = AdmissionQueue::new(8, 1);
        q.push(0, i64::MAX).unwrap();
        q.push(1, i64::MAX).unwrap();
        q.push(2, i64::MIN).unwrap();
        // First pop advances the clock; the second evaluates job 1 with
        // one aged round, i.e. i64::MAX + 1 before the fix.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1), "saturated priority must still win");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_cancels_queued_job() {
        let mut q = AdmissionQueue::new(4, 1);
        q.push(0, 0).unwrap();
        q.push(1, 1).unwrap();
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }
}
