//! The `mfc-serve` daemon wire protocol: line-delimited JSON over TCP.
//!
//! Every frame is one JSON object on one line. Requests carry a `cmd`
//! tag; responses always carry `"ok": true|false`, with failures typed
//! as `{"ok": false, "error": {"kind": ..., "message": ...}}` so a
//! client can react to backpressure (`queue_full`), admission rejection
//! (`rejected`), or a draining daemon (`draining`) without string
//! matching. A malformed frame is itself a typed error
//! (`malformed_frame`) — the server answers it and keeps the connection
//! open; it never aborts on client input.
//!
//! ```text
//! → {"cmd":"submit","job":{"case":"cases/sod.json","max_steps":20}}
//! ← {"ok":true,"id":0}
//! → {"cmd":"metrics"}
//! ← {"ok":true,"metrics":{"queued":0,"running":1,...}}
//! → {"cmd":"drain"}
//! ← {"ok":true,"draining":true,"metrics":{...}}
//! ```
//!
//! Request parsing is deliberately strict (hand-rolled over the JSON
//! tree rather than derived): an unknown `cmd`, a missing or mistyped
//! field, or stray top-level keys are all malformed frames — a typo
//! must never be silently accepted as a no-op by a long-running daemon.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::job::{JobSpec, JobState, SchedError};

/// One request frame (see the module docs for the wire form).
#[derive(Debug, Clone)]
pub enum Request {
    /// Validate and enqueue a job while the ensemble runs (streaming
    /// admission — the daemon-mode counterpart of a manifest entry).
    Submit(JobSpec),
    /// Report one job (by id) or every job the daemon has seen.
    Status(Option<u64>),
    /// Cooperatively cancel a queued or running job.
    Cancel(u64),
    /// Live occupancy/outcome counters (see [`MetricsSnapshot`]).
    Metrics,
    /// Stop admission; queued and running jobs finish, then the daemon
    /// flushes its ledger and exits 0.
    Drain,
    /// Cancel everything cooperatively at step boundaries, flush the
    /// ledger, exit 0.
    Shutdown,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit(job) => {
                json!({"cmd": "submit", "job": serde_json::to_value(job)}).to_string()
            }
            Request::Status(None) => json!({"cmd": "status"}).to_string(),
            Request::Status(Some(id)) => json!({"cmd": "status", "id": *id}).to_string(),
            Request::Cancel(id) => json!({"cmd": "cancel", "id": *id}).to_string(),
            Request::Metrics => json!({"cmd": "metrics"}).to_string(),
            Request::Drain => json!({"cmd": "drain"}).to_string(),
            Request::Shutdown => json!({"cmd": "shutdown"}).to_string(),
            Request::Ping => json!({"cmd": "ping"}).to_string(),
        }
    }
}

/// Typed failure of a single protocol exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame was not a well-formed request (bad JSON, unknown
    /// command, missing/mistyped fields). The connection survives.
    MalformedFrame { detail: String },
    /// The scheduler refused the command.
    Sched(SchedError),
}

impl ProtocolError {
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolError::MalformedFrame { .. } => "malformed_frame",
            ProtocolError::Sched(e) => e.kind(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::MalformedFrame { detail } => write!(f, "malformed frame: {detail}"),
            ProtocolError::Sched(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<SchedError> for ProtocolError {
    fn from(e: SchedError) -> Self {
        ProtocolError::Sched(e)
    }
}

fn malformed(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::MalformedFrame {
        detail: detail.into(),
    }
}

/// Reject stray top-level keys: a daemon must not silently ignore a
/// mistyped field name in an operator command.
fn check_keys(obj: &serde_json::Map, allowed: &[&str]) -> Result<(), ProtocolError> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(malformed(format!("unknown field '{key}'")));
        }
    }
    Ok(())
}

fn required_id(obj: &serde_json::Map, cmd: &str) -> Result<u64, ProtocolError> {
    obj.get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed(format!("'{cmd}' needs a numeric job id")))
}

/// Decode one line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v: Value =
        serde_json::from_str(line.trim()).map_err(|e| malformed(format!("not JSON: {e}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| malformed("frame is not a JSON object"))?;
    let cmd = obj
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing string field 'cmd'"))?;
    match cmd {
        "submit" => {
            check_keys(obj, &["cmd", "job"])?;
            let job = obj
                .get("job")
                .ok_or_else(|| malformed("'submit' needs a 'job' object"))?;
            let spec: JobSpec = serde_json::from_value(job)
                .map_err(|e| malformed(format!("bad job spec: {e}")))?;
            Ok(Request::Submit(spec))
        }
        "status" => {
            check_keys(obj, &["cmd", "id"])?;
            let id = match obj.get("id") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| malformed("'status' id must be numeric"))?,
                ),
            };
            Ok(Request::Status(id))
        }
        "cancel" => {
            check_keys(obj, &["cmd", "id"])?;
            Ok(Request::Cancel(required_id(obj, "cancel")?))
        }
        "metrics" => check_keys(obj, &["cmd"]).map(|()| Request::Metrics),
        "drain" => check_keys(obj, &["cmd"]).map(|()| Request::Drain),
        "shutdown" => check_keys(obj, &["cmd"]).map(|()| Request::Shutdown),
        "ping" => check_keys(obj, &["cmd"]).map(|()| Request::Ping),
        other => Err(malformed(format!("unknown command '{other}'"))),
    }
}

/// Live scheduler state, served by the `metrics` command and fed from
/// the same counters the scheduler's trace timeline records
/// (`queue_depth`, `running_jobs`, `busy_workers`) plus the terminal
/// ledger accounting.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct MetricsSnapshot {
    /// Global worker budget.
    pub budget: usize,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Jobs currently holding a worker share.
    pub running: usize,
    /// Σ shares over the running jobs (≤ budget).
    pub busy_workers: usize,
    /// budget − busy_workers.
    pub idle_workers: usize,
    /// Jobs accepted since startup (rejections don't count).
    pub submitted: u64,
    pub done: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub timed_out: u64,
    /// Σ worker-seconds consumed by terminal jobs.
    pub worker_seconds: f64,
    /// Admission is closed; the daemon exits once idle.
    pub draining: bool,
}

/// One job's row in a `status` reply: live state plus the terminal
/// accounting once the job finishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusRow {
    pub id: u64,
    pub job: String,
    pub state: JobState,
    /// Steps taken (terminal jobs only — a running job's count lives on
    /// its worker thread).
    #[serde(default)]
    pub steps: Option<u64>,
    #[serde(default)]
    pub reason: Option<String>,
    #[serde(default)]
    pub output: Option<PathBuf>,
}

/// `{"ok":true, ...extra}` on one line.
pub fn ok_response(extra: Value) -> String {
    let mut m = serde_json::Map::new();
    m.insert("ok", Value::Bool(true));
    if let Some(add) = extra.as_object() {
        for (k, val) in add.iter() {
            m.insert(k.clone(), val.clone());
        }
    }
    Value::Object(m).to_string()
}

/// `{"ok":false,"error":{"kind":...,"message":...}}` on one line.
pub fn error_response(err: &ProtocolError) -> String {
    json!({
        "ok": false,
        "error": json!({ "kind": err.kind(), "message": err.to_string() })
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert!(matches!(
            parse_request(r#"{"cmd":"submit","job":{"case":"c.json"}}"#),
            Ok(Request::Submit(_))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"status"}"#),
            Ok(Request::Status(None))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"status","id":3}"#),
            Ok(Request::Status(Some(3)))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"cancel","id":1}"#),
            Ok(Request::Cancel(1))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"metrics"}"#),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"drain"}"#),
            Ok(Request::Drain)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
    }

    #[test]
    fn requests_round_trip_through_to_line() {
        let mut spec = JobSpec::new("cases/sod.json");
        spec.priority = 3;
        spec.max_steps = Some(7);
        for req in [
            Request::Submit(spec),
            Request::Status(None),
            Request::Status(Some(4)),
            Request::Cancel(2),
            Request::Metrics,
            Request::Drain,
            Request::Shutdown,
            Request::Ping,
        ] {
            let line = req.to_line();
            let back = parse_request(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            match (&req, &back) {
                (Request::Submit(a), Request::Submit(b)) => {
                    assert_eq!(a.case, b.case);
                    assert_eq!(a.priority, b.priority);
                    assert_eq!(a.max_steps, b.max_steps);
                }
                (Request::Status(a), Request::Status(b)) => assert_eq!(a, b),
                (Request::Cancel(a), Request::Cancel(b)) => assert_eq!(a, b),
                (Request::Metrics, Request::Metrics)
                | (Request::Drain, Request::Drain)
                | (Request::Shutdown, Request::Shutdown)
                | (Request::Ping, Request::Ping) => {}
                other => panic!("round-trip changed the variant: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_frames_are_typed_not_fatal() {
        for bad in [
            "not json at all",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"cancel"}"#,               // missing id
            r#"{"cmd":"cancel","id":"twelve"}"#, // wrong type
            r#"{"cmd":"metrics","extra":1}"#,    // stray field
            r#"{"cmd":"submit"}"#,               // missing job
            r#"[1,2,3]"#,                        // not an object
            "",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind(), "malformed_frame", "{bad:?}");
            let rendered = error_response(&err);
            let v: Value = serde_json::from_str(&rendered).unwrap();
            assert_eq!(v["ok"].as_bool(), Some(false));
            assert_eq!(v["error"]["kind"].as_str(), Some("malformed_frame"));
        }
    }

    #[test]
    fn sched_errors_keep_their_kind_on_the_wire() {
        let err: ProtocolError = SchedError::QueueFull { cap: 4 }.into();
        let v: Value = serde_json::from_str(&error_response(&err)).unwrap();
        assert_eq!(v["error"]["kind"].as_str(), Some("queue_full"));
        let err: ProtocolError = SchedError::Draining.into();
        assert_eq!(err.kind(), "draining");
    }

    #[test]
    fn metrics_snapshot_roundtrips() {
        let m = MetricsSnapshot {
            budget: 4,
            queued: 2,
            running: 3,
            busy_workers: 4,
            idle_workers: 0,
            submitted: 9,
            done: 3,
            failed: 1,
            cancelled: 0,
            timed_out: 0,
            worker_seconds: 1.5,
            draining: false,
        };
        let line = ok_response(json!({ "metrics": serde_json::to_value(&m) }));
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        let back: MetricsSnapshot = serde_json::from_value(&v["metrics"]).unwrap();
        assert_eq!(back, m);
    }
}
