//! `mfc-serve` — run a job ensemble on a shared elastic worker budget
//! and emit a JSONL results ledger.
//!
//! Two modes share one scheduler loop: **manifest mode** (`--jobs`)
//! replays a fixed job list and exits when it drains; **daemon mode**
//! (`--listen`) accepts jobs over TCP while the ensemble runs and exits
//! only after a `drain` or `shutdown` command.

use std::path::PathBuf;
use std::sync::Arc;

use mfc_sched::{write_ledger, JobSpec, JobState, SchedClient, SchedConfig, Scheduler, Server};
use serde::Deserialize;

const USAGE: &str = "usage: mfc-serve (--jobs manifest.json | --listen ADDR) [--budget W] \
[--queue-cap N] [--out-dir DIR] [--ledger PATH] [--trace PATH]";

const HELP: &str = "\
mfc-serve — deterministic ensemble scheduler for MFC case files

usage: mfc-serve (--jobs manifest.json | --listen ADDR) [flags]

Manifest mode runs a fixed job list and exits when it drains. The
manifest lists jobs (case path + overrides) and optionally the
scheduler knobs; command-line flags override the manifest:

  { \"budget\": 4, \"queue_cap\": 16, \"out_dir\": \"out/serve\",
    \"jobs\": [
      { \"case\": \"cases/sod.json\", \"priority\": 2, \"workers\": 2 },
      { \"case\": \"cases/sod.json\", \"name\": \"lowprio\", \"max_steps\": 40 } ] }

Daemon mode (--listen 127.0.0.1:PORT; port 0 picks one) serves a
line-delimited JSON protocol over TCP — one request object per line,
one response line each:

  {\"cmd\":\"submit\",\"job\":{\"case\":\"cases/sod.json\",\"max_steps\":20}}
  {\"cmd\":\"status\"}          {\"cmd\":\"status\",\"id\":0}
  {\"cmd\":\"cancel\",\"id\":0}   {\"cmd\":\"metrics\"}
  {\"cmd\":\"drain\"}           {\"cmd\":\"shutdown\"}     {\"cmd\":\"ping\"}

Submissions stream into the running ensemble and repartition the pool
like any departure; `drain` closes admission and lets queued/running
jobs finish; `shutdown` also cancels them cooperatively at step
boundaries. Either way the ledger is flushed and the process exits 0.
A manifest given alongside --listen is pre-submitted at startup. The
bound address is printed as `listening on HOST:PORT`.

Each job is validated at admission (the same deep check as
`mfc-run --dry-run`); malformed jobs reject the manifest before anything
runs, and a rejected TCP submission is a typed error response on the
same connection. Running jobs share the worker budget elastically —
shares are re-partitioned whenever a job arrives or finishes, applied
only at step boundaries, and results stay bitwise identical to a
standalone run at any share sequence. One job's failure (or injected
fault, or panic) marks only that job Failed; siblings complete
undisturbed.

flags:
  --help           print this help and exit
  --jobs PATH      ensemble manifest (required unless --listen is given)
  --listen ADDR    daemon mode: accept TCP clients on ADDR
  --budget W       global worker budget shared by running jobs
  --queue-cap N    bounded admission-queue capacity
  --out-dir DIR    per-job artifacts under DIR/<id>_<name>/
  --ledger PATH    JSONL results ledger (default DIR/ledger.jsonl)
  --trace PATH     chrome-trace JSON of the whole ensemble: scheduler
                   counters (queue_depth, running_jobs, busy_workers)
                   and client connect/disconnect instants on timeline 0,
                   one timeline per job with its `job` span and kernel
                   events; summarize with mfc-trace-report

exit codes:
  0  the ensemble ran to completion / the daemon drained or shut down
     (per-job outcomes are in the ledger)
  2  usage error, bad manifest, or a job rejected at admission
  3  I/O failure: unwritable --out-dir/--ledger (checked at startup),
     bind failure, or a ledger/trace write error
";

#[derive(Deserialize)]
#[serde(deny_unknown_fields)]
struct Manifest {
    #[serde(default)]
    budget: Option<usize>,
    #[serde(default)]
    queue_cap: Option<usize>,
    #[serde(default)]
    aging_rounds: Option<u64>,
    #[serde(default)]
    out_dir: Option<PathBuf>,
    jobs: Vec<JobSpec>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn die_io(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs_path: Option<PathBuf> = None;
    let mut listen: Option<String> = None;
    let mut budget: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut ledger: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            "--jobs" => match it.next() {
                Some(v) => jobs_path = Some(v.into()),
                None => die("--jobs needs a manifest path"),
            },
            "--listen" => match it.next() {
                Some(v) => listen = Some(v.clone()),
                None => die("--listen needs an address (e.g. 127.0.0.1:0)"),
            },
            "--budget" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => budget = Some(n),
                _ => die("--budget needs a positive worker count"),
            },
            "--queue-cap" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => queue_cap = Some(n),
                _ => die("--queue-cap needs a positive queue capacity"),
            },
            "--out-dir" => match it.next() {
                Some(v) => out_dir = Some(v.into()),
                None => die("--out-dir needs a directory"),
            },
            "--ledger" => match it.next() {
                Some(v) => ledger = Some(v.into()),
                None => die("--ledger needs an output path"),
            },
            "--trace" => match it.next() {
                Some(v) => trace = Some(v.into()),
                None => die("--trace needs an output path"),
            },
            other => die(&format!("unknown argument {other}")),
        }
    }
    if jobs_path.is_none() && listen.is_none() {
        die("--jobs manifest.json or --listen ADDR is required");
    }
    let manifest: Option<Manifest> = jobs_path.as_ref().map(|path| {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => die_io(&format!("cannot read {}: {e}", path.display())),
        };
        match serde_json::from_str(&text) {
            Ok(m) => m,
            Err(e) => die(&format!("bad manifest: {e}")),
        }
    });
    let manifest_jobs = manifest.as_ref().map(|m| m.jobs.len()).unwrap_or(0);
    if listen.is_none() && manifest_jobs == 0 {
        die("manifest lists no jobs");
    }

    let defaults = SchedConfig::default();
    let cfg = SchedConfig {
        budget: budget
            .or(manifest.as_ref().and_then(|m| m.budget))
            .unwrap_or(defaults.budget),
        queue_cap: queue_cap
            .or(manifest.as_ref().and_then(|m| m.queue_cap))
            .unwrap_or_else(|| manifest_jobs.max(defaults.queue_cap)),
        aging_rounds: manifest
            .as_ref()
            .and_then(|m| m.aging_rounds)
            .unwrap_or(defaults.aging_rounds),
        out_dir: out_dir
            .or(manifest.as_ref().and_then(|m| m.out_dir.clone()))
            .unwrap_or(defaults.out_dir),
        write_checkpoints: true,
    };
    let ledger_path = ledger.unwrap_or_else(|| cfg.out_dir.join("ledger.jsonl"));

    // Fail unwritable artifact paths *now* — a daemon must not accept
    // and run jobs for hours only to lose their records at the first
    // ledger flush (typed I/O error, exit 3).
    if let Err(e) = mfc_cli::ensure_writable_dir(&cfg.out_dir) {
        die_io(&e.to_string());
    }
    if let Some(parent) = ledger_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = mfc_cli::ensure_writable_dir(parent) {
            die_io(&e.to_string());
        }
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&ledger_path)
    {
        die_io(&format!(
            "cannot open ledger {}: {e}",
            ledger_path.display()
        ));
    }

    println!(
        "serving {} job(s) on a budget of {} worker(s), queue cap {}",
        manifest_jobs, cfg.budget, cfg.queue_cap
    );

    let tracer = trace.as_ref().map(|_| Arc::new(mfc_trace::Tracer::new()));
    let mut sched = Scheduler::new(cfg.clone());
    if let Some(t) = &tracer {
        sched = sched.with_tracer(Arc::clone(t));
    }
    if let Some(m) = manifest {
        for spec in m.jobs {
            if let Err(e) = sched.submit(spec) {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    let records = match &listen {
        None => sched.run(),
        Some(addr) => {
            let (client, events) = SchedClient::pair();
            let tl = tracer.as_ref().map(|t| t.handle(0));
            let mut server = match Server::bind(addr, client.clone(), tl) {
                Ok(s) => s,
                Err(e) => die_io(&format!("cannot listen on {addr}: {e}")),
            };
            println!("listening on {}", server.addr());
            let records = sched.serve(&client, events);
            server.stop();
            records
        }
    };

    if let Err(e) = write_ledger(&ledger_path, &records) {
        eprintln!("error: ledger write failed: {e}");
        std::process::exit(3);
    }
    if let (Some(path), Some(t)) = (&trace, &tracer) {
        if let Err(e) = mfc_trace::chrome::write_file(path, &t.snapshot()) {
            eprintln!("error: trace write failed: {e}");
            std::process::exit(3);
        }
    }

    println!(
        "{:>3} {:<20} {:>9} {:>7} {:>9} {:>9} {:>10} {:>6} {:>7}",
        "id", "job", "state", "steps", "wall_ms", "cpu_ms", "worker_s", "share", "resizes"
    );
    for r in &records {
        println!(
            "{:>3} {:<20} {:>9} {:>7} {:>9.1} {:>9.1} {:>10.3} {:>6} {:>7}{}",
            r.id,
            r.job,
            format!("{:?}", r.state).to_lowercase(),
            r.steps,
            r.wall_ms,
            r.cpu_ms,
            r.worker_seconds,
            r.final_share,
            r.resizes,
            r.reason
                .as_deref()
                .map(|m| format!("  ({m})"))
                .unwrap_or_default()
        );
    }
    let done = records.iter().filter(|r| r.state == JobState::Done).count();
    println!(
        "wrote {} ({done}/{} done)",
        ledger_path.display(),
        records.len()
    );
    if let Some(p) = &trace {
        println!("wrote trace {}", p.display());
    }
}
