//! End-to-end tests of the `mfc-serve` *binary*: startup validation
//! exit codes and the full daemon lifecycle over a real socket, exactly
//! as an operator would drive it.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mfc-serve")
}

fn sod_case() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../cases/sod.json")
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mfc_serve_bin_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Satellite regression: an unwritable --out-dir must be a typed
/// startup failure with exit code 3, *before* any job runs — pre-fix
/// the daemon accepted work and only failed at the first ledger flush.
#[test]
fn unwritable_out_dir_fails_at_startup_with_exit_3() {
    let base = tmp_dir("unwritable");
    // A path *under a regular file* can never be created as a dir.
    let blocker = base.join("blocker");
    fs::write(&blocker, b"not a directory").unwrap();
    let out = Command::new(serve_bin())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--out-dir",
            blocker.join("out").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("writable") || stderr.contains("create") || stderr.contains("directory"),
        "stderr does not explain the failure: {stderr}"
    );
    let _ = fs::remove_dir_all(&base);
}

/// Same contract for an unwritable --ledger path.
#[test]
fn unwritable_ledger_fails_at_startup_with_exit_3() {
    let base = tmp_dir("unwritable_ledger");
    let blocker = base.join("blocker");
    fs::write(&blocker, b"not a directory").unwrap();
    let out = Command::new(serve_bin())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--out-dir",
            base.join("out").to_str().unwrap(),
            "--ledger",
            blocker.join("deep/ledger.jsonl").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let _ = fs::remove_dir_all(&base);
}

/// Full daemon lifecycle against the real binary: bind on an ephemeral
/// port, submit a job over TCP, drain, exit 0, complete ledger on disk.
#[test]
fn daemon_end_to_end_over_tcp() {
    let out_dir = tmp_dir("e2e");
    let ledger = out_dir.join("ledger.jsonl");
    let mut child = Command::new(serve_bin())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
            "--budget",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The bound address is announced on stdout (line-buffered).
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).unwrap() == 0 {
            let mut err = String::new();
            child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
            panic!("daemon exited before announcing its address: {err}");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> serde_json::Value {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    let v = roundtrip(r#"{"cmd":"ping"}"#);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");

    let submit = format!(
        r#"{{"cmd":"submit","job":{{"case":{},"name":"wire","max_steps":6}}}}"#,
        serde_json::to_string(&Path::new(sod_case())).unwrap()
    );
    let v = roundtrip(&submit);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");
    let id = v.get("id").and_then(|i| i.as_u64()).unwrap();

    let v = roundtrip(r#"{"cmd":"drain"}"#);
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{v:?}");

    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "daemon did not exit 0 after drain");

    // The ledger records the streamed job as done with its checkpoint.
    let text = fs::read_to_string(&ledger).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "ledger: {text}");
    let rec: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(rec.get("id").and_then(|i| i.as_u64()), Some(id));
    assert_eq!(rec.get("state").and_then(|s| s.as_str()), Some("done"), "{rec:?}");
    assert_eq!(rec.get("steps").and_then(|s| s.as_u64()), Some(6));
    let ckpt = rec
        .get("output")
        .and_then(|o| o.as_str())
        .expect("done job records its checkpoint path");
    assert!(Path::new(ckpt).is_file(), "missing checkpoint {ckpt}");
    let _ = fs::remove_dir_all(&out_dir);
}
