//! The `scalar_field` derived-type layout of Listing 2.
//!
//! MFC's state is a Fortran array of `scalar_field` types, each holding a
//! pointer to its own 3-D array.  Each field is therefore a separate heap
//! allocation, and a kernel touching all equations of one cell walks `nf`
//! unrelated allocations — exactly the access pattern the paper's packing
//! optimization removes.  We preserve the separate-allocation property
//! (one boxed slice per field) so ablation benchmarks measure the same
//! effect.

use crate::dims::Dims3;

/// One 3-D scalar field (Listing 2's `type scalar_field`).
///
/// Data is stored with Fortran ordering: the first spatial index is the
/// fastest.
#[derive(Debug, Clone)]
pub struct ScalarField {
    dims: Dims3,
    data: Box<[f64]>,
}

impl ScalarField {
    /// A zero-initialized field of the given extents.
    pub fn zeros(dims: Dims3) -> Self {
        ScalarField {
            dims,
            data: vec![0.0; dims.len()].into_boxed_slice(),
        }
    }

    /// A field filled from a function of the (i1, i2, i3) coordinate.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let mut s = ScalarField::zeros(dims);
        for i3 in 0..dims.n3 {
            for i2 in 0..dims.n2 {
                for i1 in 0..dims.n1 {
                    s.data[dims.idx(i1, i2, i3)] = f(i1, i2, i3);
                }
            }
        }
        s
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline(always)]
    pub fn get(&self, i1: usize, i2: usize, i3: usize) -> f64 {
        self.data[self.dims.idx(i1, i2, i3)]
    }

    #[inline(always)]
    pub fn set(&mut self, i1: usize, i2: usize, i3: usize, v: f64) {
        self.data[self.dims.idx(i1, i2, i3)] = v;
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// An array of scalar fields — MFC's `type(scalar_field), dimension(:)`.
///
/// Every field shares the same extents. Field `j` corresponds to equation
/// `j` of the conservative (or primitive) state vector.
#[derive(Debug, Clone)]
pub struct ScalarFieldSet {
    dims: Dims3,
    fields: Vec<ScalarField>,
}

impl ScalarFieldSet {
    /// `nf` zero-initialized fields of the given extents.
    pub fn zeros(dims: Dims3, nf: usize) -> Self {
        ScalarFieldSet {
            dims,
            fields: (0..nf).map(|_| ScalarField::zeros(dims)).collect(),
        }
    }

    /// Fields filled from a function of (field, i1, i2, i3).
    pub fn from_fn(
        dims: Dims3,
        nf: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f64,
    ) -> Self {
        let fields = (0..nf)
            .map(|j| ScalarField::from_fn(dims, |i1, i2, i3| f(j, i1, i2, i3)))
            .collect();
        ScalarFieldSet { dims, fields }
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Number of fields (equations).
    #[inline]
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    #[inline]
    pub fn field(&self, j: usize) -> &ScalarField {
        &self.fields[j]
    }

    #[inline]
    pub fn field_mut(&mut self, j: usize) -> &mut ScalarField {
        &mut self.fields[j]
    }

    pub fn iter(&self) -> impl Iterator<Item = &ScalarField> {
        self.fields.iter()
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ScalarField> {
        self.fields.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_places_values_at_expected_indices() {
        let d = Dims3::new(3, 2, 2);
        let f = ScalarField::from_fn(d, |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(f.get(0, 0, 0), 0.0);
        assert_eq!(f.get(2, 1, 1), 112.0);
        // Fortran ordering: (1,0,0) is adjacent to (0,0,0) in memory.
        assert_eq!(f.as_slice()[1], f.get(1, 0, 0));
    }

    #[test]
    fn set_get_round_trip() {
        let mut f = ScalarField::zeros(Dims3::new(4, 4, 4));
        f.set(3, 2, 1, 7.5);
        assert_eq!(f.get(3, 2, 1), 7.5);
    }

    #[test]
    fn field_set_has_independent_allocations() {
        let mut s = ScalarFieldSet::zeros(Dims3::new(2, 2, 2), 3);
        s.field_mut(1).set(0, 0, 0, 5.0);
        assert_eq!(s.field(0).get(0, 0, 0), 0.0);
        assert_eq!(s.field(1).get(0, 0, 0), 5.0);
        assert_eq!(s.field(2).get(0, 0, 0), 0.0);
    }

    #[test]
    fn field_set_from_fn_indexes_by_field_first() {
        let s = ScalarFieldSet::from_fn(Dims3::new(2, 2, 2), 2, |f, i, _, _| (f * 100 + i) as f64);
        assert_eq!(s.field(1).get(1, 0, 0), 101.0);
    }
}
