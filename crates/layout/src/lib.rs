//! Array layouts, packing, and transpose kernels.
//!
//! MFC stores the flow state as an array of user-defined `scalar_field`
//! types (Listing 2 of the paper), one 3-D field per equation.  The paper's
//! headline single-kernel optimizations are about *re-laying-out* that data:
//!
//! * packing the array-of-fields into one flattened 4-D array (6x WENO
//!   speedup in the paper),
//! * reshaping the flattened array so the sweep direction is the
//!   fastest-varying (memory-coalesced) index (10x WENO speedup),
//! * performing those reshapes with batched GEAM-style transposes instead of
//!   collapsed scalar loops (7x on MI250X with hipBLAS).
//!
//! This crate provides all three representations and all three transpose
//! strategies so the rest of the workspace — and the ablation benchmarks —
//! can reproduce those comparisons:
//!
//! * [`ScalarField`] / [`ScalarFieldSet`]: the array-of-fields layout
//!   (Listing 2).
//! * [`Flat4D`]: a flattened 4-D array with Fortran ordering (first index
//!   fastest), the "coalesced multidimensional array" of the paper.
//! * [`pack`]: converts a [`ScalarFieldSet`] into x/y/z-coalesced
//!   [`Flat4D`] buffers (Listings 3 and 4).
//! * [`transpose`]: naive collapsed-loop, cache-tiled, and two-step batched
//!   GEAM transposes (Listing 4's `hipblasDgeamStridedBatched` +
//!   `hipblasDgeam` pair).
//!
//! All indices follow the Fortran convention of the paper: `(i1, i2, i3, i4)`
//! with `i1` fastest. Spatial indices map to `(x, y, z, field)` in the
//! x-coalesced buffer.

pub mod dims;
pub mod flat;
pub mod pack;
pub mod scalar_field;
pub mod transpose;

pub use dims::{Dims3, Dims4, Dir};
pub use flat::Flat4D;
pub use pack::{pack_coalesced, unpack_coalesced};
pub use scalar_field::{ScalarField, ScalarFieldSet};
pub use transpose::{
    transpose_2134_geam, transpose_2134_naive, transpose_3214_geam, transpose_3214_naive,
    transpose_3214_tiled,
};
