//! Dimension and stride bookkeeping shared by every layout type.

/// A coordinate sweep direction, named after the physical axis it
/// corresponds to in the solver.
///
/// MFC reconstructs and solves Riemann problems dimension-by-dimension;
/// before each sweep the state is re-laid-out so that the sweep direction is
/// the fastest-varying (coalesced) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    X,
    Y,
    Z,
}

impl Dir {
    /// All three directions in sweep order.
    pub const ALL: [Dir; 3] = [Dir::X, Dir::Y, Dir::Z];

    /// The 0-based axis number: x → 0, y → 1, z → 2.
    #[inline]
    pub fn axis(self) -> usize {
        match self {
            Dir::X => 0,
            Dir::Y => 1,
            Dir::Z => 2,
        }
    }

    /// Direction from a 0-based axis number.
    #[inline]
    pub fn from_axis(axis: usize) -> Dir {
        match axis {
            0 => Dir::X,
            1 => Dir::Y,
            2 => Dir::Z,
            _ => panic!("axis {axis} out of range (expected 0..3)"),
        }
    }
}

/// Extents of a 3-D block, `(n1, n2, n3)` with `n1` fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims3 {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
}

impl Dims3 {
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        Dims3 { n1, n2, n3 }
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index with Fortran ordering (`i1` fastest).
    #[inline(always)]
    pub fn idx(&self, i1: usize, i2: usize, i3: usize) -> usize {
        debug_assert!(i1 < self.n1 && i2 < self.n2 && i3 < self.n3);
        i1 + self.n1 * (i2 + self.n2 * i3)
    }

    /// Extent along a sweep direction.
    #[inline]
    pub fn extent(&self, dir: Dir) -> usize {
        match dir {
            Dir::X => self.n1,
            Dir::Y => self.n2,
            Dir::Z => self.n3,
        }
    }
}

/// Extents of a 4-D block, `(n1, n2, n3, n4)` with `n1` fastest.
///
/// By convention the fourth index is the *field* (equation) index, matching
/// the paper's `v_temp(k, l, q, j)` with `j` the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims4 {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
    pub n4: usize,
}

impl Dims4 {
    pub fn new(n1: usize, n2: usize, n3: usize, n4: usize) -> Self {
        Dims4 { n1, n2, n3, n4 }
    }

    /// 4-D dims from a spatial block plus a field count.
    pub fn from_spatial(d: Dims3, nf: usize) -> Self {
        Dims4::new(d.n1, d.n2, d.n3, nf)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3 * self.n4
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index with Fortran ordering (`i1` fastest).
    #[inline(always)]
    pub fn idx(&self, i1: usize, i2: usize, i3: usize, i4: usize) -> usize {
        debug_assert!(
            i1 < self.n1 && i2 < self.n2 && i3 < self.n3 && i4 < self.n4,
            "index ({i1},{i2},{i3},{i4}) out of bounds for {self:?}"
        );
        i1 + self.n1 * (i2 + self.n2 * (i3 + self.n3 * i4))
    }

    /// The spatial part of the extents.
    pub fn spatial(&self) -> Dims3 {
        Dims3::new(self.n1, self.n2, self.n3)
    }

    /// Extents after the `(1,2,3,4) → (3,2,1,4)` index permutation performed
    /// by the GEAM transposes of Listings 3–4.
    pub fn permuted_3214(&self) -> Dims4 {
        Dims4::new(self.n3, self.n2, self.n1, self.n4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_axis_round_trip() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_axis(d.axis()), d);
        }
    }

    #[test]
    #[should_panic]
    fn dir_from_bad_axis_panics() {
        let _ = Dir::from_axis(3);
    }

    #[test]
    fn dims3_linear_index_is_fortran_ordered() {
        let d = Dims3::new(4, 3, 2);
        assert_eq!(d.len(), 24);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1); // first index fastest
        assert_eq!(d.idx(0, 1, 0), 4);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.idx(3, 2, 1), 23);
    }

    #[test]
    fn dims4_linear_index_is_fortran_ordered() {
        let d = Dims4::new(4, 3, 2, 5);
        assert_eq!(d.len(), 120);
        assert_eq!(d.idx(1, 0, 0, 0), 1);
        assert_eq!(d.idx(0, 0, 0, 1), 24); // field index slowest
        assert_eq!(d.idx(3, 2, 1, 4), 119);
    }

    #[test]
    fn dims4_permutation_swaps_first_and_third() {
        let d = Dims4::new(4, 3, 2, 5);
        assert_eq!(d.permuted_3214(), Dims4::new(2, 3, 4, 5));
    }

    #[test]
    fn dims3_extent_matches_direction() {
        let d = Dims3::new(4, 3, 2);
        assert_eq!(d.extent(Dir::X), 4);
        assert_eq!(d.extent(Dir::Y), 3);
        assert_eq!(d.extent(Dir::Z), 2);
    }
}
