//! Packing the `scalar_field` array into direction-coalesced flat buffers.
//!
//! Before a WENO/Riemann sweep along direction `d`, MFC packs the state so
//! that `d` becomes the fastest-varying index of one flat 4-D array
//! (Listings 3–4).  On GPUs this is what makes the sweep's memory accesses
//! coalesced; on CPUs it makes them unit-stride, which is the same win in
//! cache-line terms.

use crate::dims::{Dims4, Dir};
use crate::flat::Flat4D;
use crate::scalar_field::ScalarFieldSet;

/// Extents of the coalesced buffer for a sweep along `dir`.
///
/// * x: `(n1, n2, n3, nf)` — identity,
/// * y: `(n2, n1, n3, nf)` — swap first two spatial indices,
/// * z: `(n3, n2, n1, nf)` — the `(1,2,3,4) → (3,2,1,4)` permutation.
pub fn coalesced_dims(src: &ScalarFieldSet, dir: Dir) -> Dims4 {
    let d = src.dims();
    let nf = src.num_fields();
    match dir {
        Dir::X => Dims4::new(d.n1, d.n2, d.n3, nf),
        Dir::Y => Dims4::new(d.n2, d.n1, d.n3, nf),
        Dir::Z => Dims4::new(d.n3, d.n2, d.n1, nf),
    }
}

/// Pack an array of scalar fields into a flat 4-D buffer whose first index
/// runs along `dir`.
///
/// `out` must already have [`coalesced_dims`] extents; reusing the buffer
/// across sweeps mirrors the paper's reuse of `v_temp` and avoids
/// per-time-step allocation.
pub fn pack_coalesced(src: &ScalarFieldSet, dir: Dir, out: &mut Flat4D) {
    let d = src.dims();
    assert_eq!(
        out.dims(),
        coalesced_dims(src, dir),
        "output buffer has wrong extents for {dir:?} packing"
    );
    let nf = src.num_fields();
    for j in 0..nf {
        let f = src.field(j).as_slice();
        match dir {
            // out(i1,i2,i3,j) = f(i1,i2,i3): both sides walk memory in order.
            Dir::X => {
                let od = out.dims();
                let base = od.idx(0, 0, 0, j);
                out.as_mut_slice()[base..base + f.len()].copy_from_slice(f);
            }
            // out(i2,i1,i3,j) = f(i1,i2,i3)
            Dir::Y => {
                for i3 in 0..d.n3 {
                    for i2 in 0..d.n2 {
                        for i1 in 0..d.n1 {
                            let v = f[d.idx(i1, i2, i3)];
                            out.set(i2, i1, i3, j, v);
                        }
                    }
                }
            }
            // out(i3,i2,i1,j) = f(i1,i2,i3)
            Dir::Z => {
                for i3 in 0..d.n3 {
                    for i2 in 0..d.n2 {
                        for i1 in 0..d.n1 {
                            let v = f[d.idx(i1, i2, i3)];
                            out.set(i3, i2, i1, j, v);
                        }
                    }
                }
            }
        }
    }
}

/// Inverse of [`pack_coalesced`]: scatter a coalesced buffer back into the
/// array of scalar fields.
pub fn unpack_coalesced(src: &Flat4D, dir: Dir, out: &mut ScalarFieldSet) {
    let d = out.dims();
    assert_eq!(
        src.dims(),
        coalesced_dims(out, dir),
        "input buffer has wrong extents for {dir:?} unpacking"
    );
    let nf = out.num_fields();
    for j in 0..nf {
        let f = out.field_mut(j).as_mut_slice();
        match dir {
            Dir::X => {
                let sd = src.dims();
                let base = sd.idx(0, 0, 0, j);
                f.copy_from_slice(&src.as_slice()[base..base + f.len()]);
            }
            Dir::Y => {
                for i3 in 0..d.n3 {
                    for i2 in 0..d.n2 {
                        for i1 in 0..d.n1 {
                            f[d.idx(i1, i2, i3)] = src.get(i2, i1, i3, j);
                        }
                    }
                }
            }
            Dir::Z => {
                for i3 in 0..d.n3 {
                    for i2 in 0..d.n2 {
                        for i1 in 0..d.n1 {
                            f[d.idx(i1, i2, i3)] = src.get(i3, i2, i1, j);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    fn sample_set() -> ScalarFieldSet {
        ScalarFieldSet::from_fn(Dims3::new(4, 3, 2), 2, |f, i1, i2, i3| {
            (f * 1000 + i1 * 100 + i2 * 10 + i3) as f64
        })
    }

    #[test]
    fn x_pack_is_identity_copy() {
        let s = sample_set();
        let mut out = Flat4D::zeros(coalesced_dims(&s, Dir::X));
        pack_coalesced(&s, Dir::X, &mut out);
        assert_eq!(out.get(2, 1, 1, 0), s.field(0).get(2, 1, 1));
        assert_eq!(out.get(3, 0, 1, 1), s.field(1).get(3, 0, 1));
    }

    #[test]
    fn y_pack_swaps_first_two_indices() {
        let s = sample_set();
        let mut out = Flat4D::zeros(coalesced_dims(&s, Dir::Y));
        pack_coalesced(&s, Dir::Y, &mut out);
        assert_eq!(out.dims(), Dims4::new(3, 4, 2, 2));
        assert_eq!(out.get(1, 2, 1, 0), s.field(0).get(2, 1, 1));
    }

    #[test]
    fn z_pack_performs_3214_permutation() {
        let s = sample_set();
        let mut out = Flat4D::zeros(coalesced_dims(&s, Dir::Z));
        pack_coalesced(&s, Dir::Z, &mut out);
        assert_eq!(out.dims(), Dims4::new(2, 3, 4, 2));
        assert_eq!(out.get(1, 1, 2, 1), s.field(1).get(2, 1, 1));
    }

    #[test]
    fn pack_unpack_round_trips_all_directions() {
        let s = sample_set();
        for dir in Dir::ALL {
            let mut buf = Flat4D::zeros(coalesced_dims(&s, dir));
            pack_coalesced(&s, dir, &mut buf);
            let mut back = ScalarFieldSet::zeros(s.dims(), s.num_fields());
            unpack_coalesced(&buf, dir, &mut back);
            for j in 0..s.num_fields() {
                assert_eq!(s.field(j).as_slice(), back.field(j).as_slice(), "{dir:?}");
            }
        }
    }

    #[test]
    fn coalesced_line_runs_along_requested_direction() {
        let s = sample_set();
        let mut out = Flat4D::zeros(coalesced_dims(&s, Dir::Y));
        pack_coalesced(&s, Dir::Y, &mut out);
        // A contiguous line of the packed buffer walks i2 of the original.
        let line = out.line(0, 0, 0);
        for (i2, &v) in line.iter().enumerate() {
            assert_eq!(v, s.field(0).get(0, i2, 0));
        }
    }
}
