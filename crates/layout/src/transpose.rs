//! Three implementations of the `(1,2,3,4) → (3,2,1,4)` index permutation
//! from Listings 3–4.
//!
//! * [`transpose_3214_naive`]: fully collapsed scalar loops — the OpenACC
//!   fallback that the paper reports running seven times slower than the
//!   library path on MI250X.
//! * [`transpose_3214_tiled`]: a cache-blocked transpose. On CPUs this is the
//!   standard bandwidth-optimal technique and stands in for what
//!   cuTENSOR/hipBLAS do on devices.
//! * [`transpose_3214_geam`]: the exact two-step decomposition of Listing 4 —
//!   a strided *batched* swap of the first two indices
//!   (`A_{ijk} → A_{jik}`, one batch entry per `k`), followed by a single
//!   *unbatched* transpose of the grouped index pair
//!   (`A_{(ji)k} → A_{k(ji)}`) — each step executed with the tiled 2-D
//!   transpose kernel playing the role of `hipblasDgeam`.

use crate::dims::Dims4;
use crate::flat::Flat4D;

/// Cache tile edge for the blocked 2-D transpose. 32×32 f64 tiles are 8 KiB
/// in + 8 KiB out, comfortably inside L1.
const TILE: usize = 32;

/// Transpose a column-major `rows × cols` matrix: `dst[j,i] = src[i,j]`.
///
/// `src` is indexed `i + rows*j`, `dst` is indexed `j + cols*i`. This is the
/// GEAM primitive (`C = alpha*op(A)` with `op = T`, `alpha = 1`).
pub fn transpose2d(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    for jb in (0..cols).step_by(TILE) {
        let jend = (jb + TILE).min(cols);
        for ib in (0..rows).step_by(TILE) {
            let iend = (ib + TILE).min(rows);
            for j in jb..jend {
                for i in ib..iend {
                    dst[j + cols * i] = src[i + rows * j];
                }
            }
        }
    }
}

/// Naive collapsed-loop permutation: `out(i3,i2,i1,i4) = a(i1,i2,i3,i4)`.
///
/// Loop order is chosen so *reads* are unit-stride (writes are strided),
/// matching what a fully collapsed OpenACC gang-vector loop over the source
/// does.
pub fn transpose_3214_naive(a: &Flat4D, out: &mut Flat4D) {
    let d = a.dims();
    assert_eq!(out.dims(), d.permuted_3214(), "output extents mismatch");
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    let (n1, n2, n3, n4) = (d.n1, d.n2, d.n3, d.n4);
    for i4 in 0..n4 {
        for i3 in 0..n3 {
            for i2 in 0..n2 {
                let sbase = n1 * (i2 + n2 * (i3 + n3 * i4));
                let dbase = i3 + n3 * (i2 + n2 * (n1 * i4));
                for i1 in 0..n1 {
                    dst[dbase + n3 * n2 * i1] = src[sbase + i1];
                }
            }
        }
    }
}

/// Cache-tiled permutation with the same semantics as
/// [`transpose_3214_naive`].
///
/// The permutation fixes `i2` and `i4` and transposes the `(i1, i3)` plane;
/// we do each plane with the blocked 2-D kernel. The strided plane access is
/// gathered through tile-local buffers.
pub fn transpose_3214_tiled(a: &Flat4D, out: &mut Flat4D) {
    let d = a.dims();
    assert_eq!(out.dims(), d.permuted_3214(), "output extents mismatch");
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    let (n1, n2, n3, n4) = (d.n1, d.n2, d.n3, d.n4);
    // src index: i1 + n1*(i2 + n2*(i3 + n3*i4))
    // dst index: i3 + n3*(i2 + n2*(i1 + n1*i4))
    for i4 in 0..n4 {
        for i2 in 0..n2 {
            for b3 in (0..n3).step_by(TILE) {
                let e3 = (b3 + TILE).min(n3);
                for b1 in (0..n1).step_by(TILE) {
                    let e1 = (b1 + TILE).min(n1);
                    for i3 in b3..e3 {
                        let sbase = n1 * (i2 + n2 * (i3 + n3 * i4));
                        for i1 in b1..e1 {
                            dst[i3 + n3 * (i2 + n2 * (i1 + n1 * i4))] = src[sbase + i1];
                        }
                    }
                }
            }
        }
    }
}

/// Naive collapsed-loop `(1,2,3,4) → (2,1,3,4)` permutation (the y-sweep
/// coalescing reshape): `out(i2,i1,i3,i4) = a(i1,i2,i3,i4)`.
pub fn transpose_2134_naive(a: &Flat4D, out: &mut Flat4D) {
    let d = a.dims();
    assert_eq!(
        out.dims(),
        Dims4::new(d.n2, d.n1, d.n3, d.n4),
        "output extents mismatch"
    );
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    let (n1, n2) = (d.n1, d.n2);
    let plane = n1 * n2;
    for (sp, dp) in src.chunks_exact(plane).zip(dst.chunks_exact_mut(plane)) {
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                dp[i2 + n2 * i1] = sp[i1 + n1 * i2];
            }
        }
    }
}

/// Batched GEAM `(1,2,3,4) → (2,1,3,4)` permutation: one strided, batched
/// 2-D transpose per `(i3, i4)` plane — a single
/// `hipblasDgeamStridedBatched` call in Listing 4's terms.
pub fn transpose_2134_geam(a: &Flat4D, out: &mut Flat4D) {
    let d = a.dims();
    assert_eq!(
        out.dims(),
        Dims4::new(d.n2, d.n1, d.n3, d.n4),
        "output extents mismatch"
    );
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    let plane = d.n1 * d.n2;
    for (sp, dp) in src.chunks_exact(plane).zip(dst.chunks_exact_mut(plane)) {
        transpose2d(sp, d.n1, d.n2, dp);
    }
}

/// The two-step batched GEAM decomposition of Listing 4.
///
/// `scratch` must have `a.dims().len()` elements; it plays the role of
/// Listing 4's `transpose_tmp` and is reused across calls to avoid
/// allocation inside the time loop.
pub fn transpose_3214_geam(a: &Flat4D, scratch: &mut Vec<f64>, out: &mut Flat4D) {
    let d = a.dims();
    assert_eq!(out.dims(), d.permuted_3214(), "output extents mismatch");
    let (n1, n2, n3, n4) = (d.n1, d.n2, d.n3, d.n4);
    scratch.resize(d.len(), 0.0);
    let src = a.as_slice();
    let dst = out.as_mut_slice();
    let plane = n1 * n2;
    let cube = plane * n3;
    for i4 in 0..n4 {
        let sfield = &src[i4 * cube..(i4 + 1) * cube];
        let tfield = &mut scratch[i4 * cube..(i4 + 1) * cube];
        // Step 1 (hipblasDgeamStridedBatched): A_{ijk} -> A_{jik}.
        // Batch over i3 with stride n1*n2 — k permutations of an
        // (n1 x n2) matrix to (n2 x n1).
        for i3 in 0..n3 {
            transpose2d(
                &sfield[i3 * plane..(i3 + 1) * plane],
                n1,
                n2,
                &mut tfield[i3 * plane..(i3 + 1) * plane],
            );
        }
        // Step 2 (unbatched hipblasDgeam): group (j,i) into one index m of
        // extent n2*n1 and transpose the (m, k) matrix: A_{(ji)k} -> A_{k(ji)}.
        transpose2d(tfield, plane, n3, &mut dst[i4 * cube..(i4 + 1) * cube]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample(dims: Dims4) -> Flat4D {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        Flat4D::from_fn(dims, |_, _, _, _| rng.gen_range(-1.0..1.0))
    }

    fn reference(a: &Flat4D) -> Flat4D {
        let d = a.dims();
        let mut out = Flat4D::zeros(d.permuted_3214());
        for i4 in 0..d.n4 {
            for i3 in 0..d.n3 {
                for i2 in 0..d.n2 {
                    for i1 in 0..d.n1 {
                        out.set(i3, i2, i1, i4, a.get(i1, i2, i3, i4));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn transpose2d_small() {
        // 2x3 column-major: [[1,2],[3,4],[5,6]] columns
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut dst = [0.0; 6];
        transpose2d(&src, 2, 3, &mut dst);
        // dst[j + 3*i] = src[i + 2*j]
        assert_eq!(dst, [1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose2d_involution() {
        let dims = (37, 53);
        let src: Vec<f64> = (0..dims.0 * dims.1).map(|i| i as f64).collect();
        let mut once = vec![0.0; src.len()];
        let mut twice = vec![0.0; src.len()];
        transpose2d(&src, dims.0, dims.1, &mut once);
        transpose2d(&once, dims.1, dims.0, &mut twice);
        assert_eq!(src, twice);
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        for dims in [
            Dims4::new(5, 4, 3, 2),
            Dims4::new(33, 17, 9, 3),
            Dims4::new(1, 7, 5, 2),
            Dims4::new(64, 1, 64, 1),
        ] {
            let a = sample(dims);
            let want = reference(&a);

            let mut naive = Flat4D::zeros(dims.permuted_3214());
            transpose_3214_naive(&a, &mut naive);
            assert_eq!(naive, want, "naive {dims:?}");

            let mut tiled = Flat4D::zeros(dims.permuted_3214());
            transpose_3214_tiled(&a, &mut tiled);
            assert_eq!(tiled, want, "tiled {dims:?}");

            let mut geam = Flat4D::zeros(dims.permuted_3214());
            let mut scratch = Vec::new();
            transpose_3214_geam(&a, &mut scratch, &mut geam);
            assert_eq!(geam, want, "geam {dims:?}");
        }
    }

    #[test]
    fn transpose_2134_variants_agree() {
        for dims in [Dims4::new(5, 4, 3, 2), Dims4::new(33, 17, 2, 3)] {
            let a = sample(dims);
            let mut want = Flat4D::zeros(Dims4::new(dims.n2, dims.n1, dims.n3, dims.n4));
            for i4 in 0..dims.n4 {
                for i3 in 0..dims.n3 {
                    for i2 in 0..dims.n2 {
                        for i1 in 0..dims.n1 {
                            want.set(i2, i1, i3, i4, a.get(i1, i2, i3, i4));
                        }
                    }
                }
            }
            let mut naive = Flat4D::zeros(want.dims());
            transpose_2134_naive(&a, &mut naive);
            assert_eq!(naive, want, "naive {dims:?}");
            let mut geam = Flat4D::zeros(want.dims());
            transpose_2134_geam(&a, &mut geam);
            assert_eq!(geam, want, "geam {dims:?}");
        }
    }

    #[test]
    fn geam_double_application_is_identity() {
        let dims = Dims4::new(12, 9, 7, 3);
        let a = sample(dims);
        let mut scratch = Vec::new();
        let mut once = Flat4D::zeros(dims.permuted_3214());
        transpose_3214_geam(&a, &mut scratch, &mut once);
        let mut twice = Flat4D::zeros(dims);
        transpose_3214_geam(&once, &mut scratch, &mut twice);
        assert_eq!(a, twice);
    }
}
