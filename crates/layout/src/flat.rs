//! The flattened, coalesced 4-D array that replaces the `scalar_field`
//! layout inside hot kernels.

use crate::dims::Dims4;

/// A dense 4-D array of `f64` with Fortran ordering (first index fastest).
///
/// This is the "flattened multidimensional array" of §III-C: packing the
/// state into one of these (instead of an array of per-field allocations)
/// is what gave the paper its six-fold WENO speedup, because the compiler
/// can reason about one contiguous allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Flat4D {
    dims: Dims4,
    data: Vec<f64>,
}

impl Flat4D {
    /// A zero-initialized array.
    pub fn zeros(dims: Dims4) -> Self {
        Flat4D {
            dims,
            data: vec![0.0; dims.len()],
        }
    }

    /// An array filled from a function of the (i1, i2, i3, i4) coordinate.
    pub fn from_fn(dims: Dims4, mut f: impl FnMut(usize, usize, usize, usize) -> f64) -> Self {
        let mut a = Flat4D::zeros(dims);
        for i4 in 0..dims.n4 {
            for i3 in 0..dims.n3 {
                for i2 in 0..dims.n2 {
                    for i1 in 0..dims.n1 {
                        a.data[dims.idx(i1, i2, i3, i4)] = f(i1, i2, i3, i4);
                    }
                }
            }
        }
        a
    }

    /// Wrap an existing buffer. Panics if the length does not match.
    pub fn from_vec(dims: Dims4, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            dims.len(),
            "buffer length {} does not match dims {:?}",
            data.len(),
            dims
        );
        Flat4D { dims, data }
    }

    #[inline]
    pub fn dims(&self) -> Dims4 {
        self.dims
    }

    #[inline(always)]
    pub fn get(&self, i1: usize, i2: usize, i3: usize, i4: usize) -> f64 {
        self.data[self.dims.idx(i1, i2, i3, i4)]
    }

    #[inline(always)]
    pub fn set(&mut self, i1: usize, i2: usize, i3: usize, i4: usize, v: f64) {
        let idx = self.dims.idx(i1, i2, i3, i4);
        self.data[idx] = v;
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The contiguous line `a[.., i2, i3, i4]` along the first (coalesced)
    /// index — the stencil line a WENO sweep reads.
    #[inline]
    pub fn line(&self, i2: usize, i3: usize, i4: usize) -> &[f64] {
        let start = self.dims.idx(0, i2, i3, i4);
        &self.data[start..start + self.dims.n1]
    }

    /// Mutable variant of [`Flat4D::line`].
    #[inline]
    pub fn line_mut(&mut self, i2: usize, i3: usize, i4: usize) -> &mut [f64] {
        let start = self.dims.idx(0, i2, i3, i4);
        &mut self.data[start..start + self.dims.n1]
    }

    /// Consume the array and return the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_index_is_contiguous() {
        let a = Flat4D::from_fn(Dims4::new(4, 2, 2, 2), |i1, i2, i3, i4| {
            (i1 + 10 * i2 + 100 * i3 + 1000 * i4) as f64
        });
        let line = a.line(1, 1, 1);
        assert_eq!(line, &[1110.0, 1111.0, 1112.0, 1113.0]);
    }

    #[test]
    fn line_mut_writes_through() {
        let mut a = Flat4D::zeros(Dims4::new(3, 2, 2, 1));
        a.line_mut(1, 0, 0).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a.get(0, 1, 0, 0), 1.0);
        assert_eq!(a.get(2, 1, 0, 0), 3.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        let _ = Flat4D::from_vec(Dims4::new(2, 2, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = Flat4D::zeros(Dims4::new(3, 3, 3, 3));
        a.set(2, 1, 0, 2, 9.0);
        assert_eq!(a.get(2, 1, 0, 2), 9.0);
    }
}
