//! Full-campaign projections — cross-checking the calibrated grind table
//! against the paper's §VI wall-clock reports.
//!
//! §VI quotes three production runs with device counts, cell counts, step
//! counts, and wall times. None of those numbers entered the calibration
//! (which used Figs. 1 and 5–7), so predicting them from
//! `grind * cells * PDEs * RHS-evals / devices` is an independent test of
//! the whole model. Agreement within ~2x is the expected fidelity: the
//! quoted runs include I/O, and §VI-B's airfoil uses the immersed
//! boundary (extra kernels the grind table does not carry).

use serde::{Deserialize, Serialize};

use crate::calib::grind_for;

/// One of the paper's §VI production campaigns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    pub name: &'static str,
    pub device: &'static str,
    pub devices: usize,
    pub cells: f64,
    pub steps: f64,
    /// PDE count of the governing system used.
    pub neq: usize,
    /// RHS evaluations per step (RK3).
    pub rhs_per_step: usize,
    /// The paper's reported wall time (s).
    pub reported_wall_s: f64,
}

/// The three §VI campaigns as the paper states them.
pub const CAMPAIGNS: [Campaign; 3] = [
    // §VI-A: 2B cells, 100k steps, 960 V100s, 2 hours.
    Campaign {
        name: "VI-A shock droplet (Summit)",
        device: "NV V100 PCIe",
        devices: 960,
        cells: 2.0e9,
        steps: 1.0e5,
        neq: 7,
        rhs_per_step: 3,
        reported_wall_s: 2.0 * 3600.0,
    },
    // §VI-B: 2.25B cells, 93k steps, 128 A100s, 19 hours.
    Campaign {
        name: "VI-B NACA 2412 airfoil (Delta)",
        device: "NV A100 PCIe",
        devices: 128,
        cells: 2.25e9,
        steps: 9.3e4,
        neq: 6, // single-fluid + IBM in 3-D
        rhs_per_step: 3,
        reported_wall_s: 19.0 * 3600.0,
    },
    // §VI-C: 2B cells, 15.6k steps, 1024 MI250X GCDs, ~30 minutes.
    Campaign {
        name: "VI-C shock bubble cloud (Frontier)",
        device: "AMD MI250X GCD",
        devices: 1024,
        cells: 2.0e9,
        steps: 1.56e4,
        neq: 7,
        rhs_per_step: 3,
        reported_wall_s: 30.0 * 60.0,
    },
];

/// Predicted wall time of a campaign from the grind table (compute only).
pub fn predicted_wall_s(c: &Campaign) -> f64 {
    let grind_ns = grind_for(c.device)
        .unwrap_or_else(|| panic!("no grind entry for {}", c.device))
        .total();
    grind_ns * 1e-9 * c.cells * c.neq as f64 * c.rhs_per_step as f64 * c.steps / c.devices as f64
}

/// One row of the projection report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectionRow {
    pub name: String,
    pub predicted_hours: f64,
    pub reported_hours: f64,
    pub ratio: f64,
}

/// Project every §VI campaign.
pub fn projection_report() -> Vec<ProjectionRow> {
    CAMPAIGNS
        .iter()
        .map(|c| {
            let p = predicted_wall_s(c);
            ProjectionRow {
                name: c.name.to_string(),
                predicted_hours: p / 3600.0,
                reported_hours: c.reported_wall_s / 3600.0,
                ratio: p / c.reported_wall_s,
            }
        })
        .collect()
}

pub fn render_projection(rows: &[ProjectionRow]) -> String {
    let mut s = String::from(
        "§VI campaign projections (independent model cross-check)\n\
         campaign                              predicted   reported   ratio\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<37} {:>8.2} h {:>8.2} h {:>6.2}\n",
            r.name, r.predicted_hours, r.reported_hours, r.ratio
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_campaign_lands_within_about_2x_of_the_reported_wall_time() {
        // VI-B carries the ghost-cell IBM (absent from the grind table),
        // so its compute-only projection sits at ~0.47x of the report;
        // the bound below still catches order-of-magnitude drift.
        for r in projection_report() {
            assert!(
                r.ratio > 0.4 && r.ratio < 2.0,
                "{}: predicted {:.2} h vs reported {:.2} h",
                r.name,
                r.predicted_hours,
                r.reported_hours
            );
        }
    }

    #[test]
    fn droplet_campaign_is_close() {
        // §VI-A is the cleanest case (no IBM, few outputs): the compute
        // projection should land close to the 2 reported hours.
        let r = &projection_report()[0];
        assert!((r.ratio - 1.0).abs() < 0.6, "ratio {}", r.ratio);
    }

    #[test]
    fn airfoil_prediction_underestimates() {
        // §VI-B includes the IBM kernels the grind table does not carry,
        // so the pure-compute prediction must come in below the report.
        let r = &projection_report()[1];
        assert!(r.ratio < 1.0, "ratio {}", r.ratio);
    }

    #[test]
    fn render_contains_all_campaigns() {
        let text = render_projection(&projection_report());
        assert!(text.contains("VI-A"));
        assert!(text.contains("VI-B"));
        assert!(text.contains("VI-C"));
    }
}
