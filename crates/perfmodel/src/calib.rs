//! Calibrated per-device grind-time table and kernel efficiencies.
//!
//! These constants are the model's fitted layer.  Each one is pinned to a
//! number the paper reports; everything else in [`crate::figures`] is
//! *derived* from this table plus the spec-sheet catalog, so the paper's
//! cross-figure consistency becomes a test of the model:
//!
//! * Fig. 5's speedup ranges (1.5–5.3x over EPYC Genoa, ~3–11x over
//!   Xeon Max/Grace, 9.1–31.3x over Power10) pin the *total* grind times.
//! * Fig. 7's statements pin the per-class split: WENO +5% on V100 and
//!   +4.5% on MI250X vs A100; Riemann +48% / +103%; packing 3.71x / 2.62x.
//! * Fig. 1 pins the achieved fraction of peak FP64: 45% / 13% (V100
//!   WENO / Riemann) and 21% / 3% (MI250X).
//!
//! Grind times are in the paper's unit: ns per grid cell per PDE per RHS
//! evaluation, for the 8-million-cell 3-D two-phase problem of Figs. 6–7.

use serde::{Deserialize, Serialize};

use mfc_acc::KernelClass;

/// Calibrated grind-time decomposition of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceGrind {
    pub device: &'static str,
    /// ns/cell/PDE/RHS in the WENO kernels.
    pub weno: f64,
    /// ns/cell/PDE/RHS in the Riemann kernels.
    pub riemann: f64,
    /// ns/cell/PDE/RHS packing/reshaping arrays.
    pub pack: f64,
    /// Everything else (BCs, conversions, updates, sources).
    pub other: f64,
}

impl DeviceGrind {
    /// Total grind time (the number printed atop each Fig. 6 column).
    pub fn total(&self) -> f64 {
        self.weno + self.riemann + self.pack + self.other
    }

    /// Component by kernel class (Halo/Update folded into Other at this
    /// granularity, as in the paper's figures).
    pub fn class(&self, c: KernelClass) -> f64 {
        match c {
            KernelClass::Weno => self.weno,
            KernelClass::Riemann => self.riemann,
            KernelClass::Pack => self.pack,
            _ => self.other,
        }
    }

    /// Fraction of the total in each of the four reported categories.
    pub fn shares(&self) -> [(KernelClass, f64); 4] {
        let t = self.total();
        [
            (KernelClass::Weno, self.weno / t),
            (KernelClass::Riemann, self.riemann / t),
            (KernelClass::Pack, self.pack / t),
            (KernelClass::Other, self.other / t),
        ]
    }
}

/// The calibrated table (see module docs for what pins each entry).
///
/// A100 is the anchor: its split is chosen so the V100/MI250X ratio
/// statements and the Fig. 5 speedup ranges hold simultaneously.
pub const GRIND_TABLE: [DeviceGrind; 9] = [
    DeviceGrind {
        device: "NV GH200",
        weno: 0.193,
        riemann: 0.138,
        pack: 0.157,
        other: 0.212,
    },
    DeviceGrind {
        device: "NV H100 SXM",
        weno: 0.234,
        riemann: 0.168,
        pack: 0.191,
        other: 0.257,
    },
    DeviceGrind {
        device: "NV A100 PCIe",
        weno: 0.302,
        riemann: 0.216,
        pack: 0.247,
        other: 0.335,
    },
    // V100: WENO 1.05x, Riemann 1.48x, pack 3.71x the A100 entries.
    DeviceGrind {
        device: "NV V100 PCIe",
        weno: 0.317,
        riemann: 0.320,
        pack: 0.916,
        other: 0.847,
    },
    // MI250X GCD: WENO 1.045x, Riemann 2.03x, pack 2.62x the A100 entries.
    DeviceGrind {
        device: "AMD MI250X GCD",
        weno: 0.316,
        riemann: 0.438,
        pack: 0.647,
        other: 0.299,
    },
    // CPUs: only totals are meaningful (no packing stage is separated on
    // the CPU path); split roughly evenly between WENO/Riemann/other.
    DeviceGrind {
        device: "AMD EPYC 9654 Genoa",
        weno: 1.45,
        riemann: 1.10,
        pack: 0.0,
        other: 1.05,
    },
    DeviceGrind {
        device: "Intel Xeon Max 9468",
        weno: 2.90,
        riemann: 2.20,
        pack: 0.0,
        other: 2.10,
    },
    DeviceGrind {
        device: "NV Grace CPU",
        weno: 3.00,
        riemann: 2.26,
        pack: 0.0,
        other: 2.14,
    },
    DeviceGrind {
        device: "IBM Power10",
        weno: 8.80,
        riemann: 6.70,
        pack: 0.0,
        other: 6.40,
    },
];

/// SIMD issue efficiency of the lane packets on the CI container host:
/// the fraction of each *additional* hardware lane that survives into
/// measured throughput (1.0 = perfect vector issue, 0.0 = lanes are
/// free-of-charge scalar replays). Calibrated once against the perf
/// snapshot's measured fused W=4 / W=1 grind ratio on the container's
/// SSE2 pipe (`hw_lane_width() == 2`, so predicted speedup is
/// `1 + eff`); `bench_snapshot --check` re-validates the prediction
/// against every future measurement within the 25% envelope, same
/// policy as [`GRIND_TABLE`].
pub const HOST_SIMD_ISSUE_EFFICIENCY: f64 = 0.25;

/// Look up a device's calibrated grind decomposition by catalog name.
pub fn grind_for(name: &str) -> Option<DeviceGrind> {
    GRIND_TABLE.iter().copied().find(|g| g.device == name)
}

/// Achieved fraction of peak FP64 per kernel class, per device — Fig. 1's
/// y-axis values (V100 and MI250X from the paper; the others interpolated
/// from their grind entries for completeness).
pub fn achieved_peak_fraction(device: &str, class: KernelClass) -> Option<f64> {
    let v = match (device, class) {
        ("NV V100 PCIe", KernelClass::Weno) => 0.45,
        ("NV V100 PCIe", KernelClass::Riemann) => 0.13,
        ("AMD MI250X GCD", KernelClass::Weno) => 0.21,
        ("AMD MI250X GCD", KernelClass::Riemann) => 0.03,
        ("NV A100 PCIe", KernelClass::Weno) => 0.40,
        ("NV A100 PCIe", KernelClass::Riemann) => 0.11,
        _ => return None,
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;

    fn g(name: &str) -> DeviceGrind {
        grind_for(name).unwrap()
    }

    #[test]
    fn component_ratios_match_paper_statements() {
        let a100 = g("NV A100 PCIe");
        let v100 = g("NV V100 PCIe");
        let mi = g("AMD MI250X GCD");
        // WENO +5% / +4.5%.
        assert!((v100.weno / a100.weno - 1.05).abs() < 0.01);
        assert!((mi.weno / a100.weno - 1.045).abs() < 0.01);
        // Riemann +48% / +103%.
        assert!((v100.riemann / a100.riemann - 1.48).abs() < 0.02);
        assert!((mi.riemann / a100.riemann - 2.03).abs() < 0.02);
        // Packing 3.71x / 2.62x.
        assert!((v100.pack / a100.pack - 3.71).abs() < 0.02);
        assert!((mi.pack / a100.pack - 2.62).abs() < 0.02);
    }

    #[test]
    fn fig5_speedup_ranges_hold() {
        let totals: Vec<f64> = hw::GPUS.iter().map(|d| g(d.name).total()).collect();
        let slowest_gpu = totals.iter().cloned().fold(0.0, f64::max);
        let fastest_gpu = totals.iter().cloned().fold(f64::INFINITY, f64::min);

        let epyc = g("AMD EPYC 9654 Genoa").total();
        assert!(
            (epyc / slowest_gpu - 1.5).abs() < 0.15,
            "min EPYC speedup {}",
            epyc / slowest_gpu
        );
        assert!(
            (epyc / fastest_gpu - 5.3).abs() < 0.4,
            "max EPYC speedup {}",
            epyc / fastest_gpu
        );

        let p10 = g("IBM Power10").total();
        assert!(
            (p10 / slowest_gpu - 9.1).abs() < 0.6,
            "min P10 speedup {}",
            p10 / slowest_gpu
        );
        assert!(
            (p10 / fastest_gpu - 31.3).abs() < 1.5,
            "max P10 speedup {}",
            p10 / fastest_gpu
        );

        for cpu in ["Intel Xeon Max 9468", "NV Grace CPU"] {
            let t = g(cpu).total();
            let lo = t / slowest_gpu;
            let hi = t / fastest_gpu;
            assert!(lo > 2.5 && hi < 11.5, "{cpu}: {lo}..{hi}");
        }
    }

    #[test]
    fn pack_share_larger_on_v100_and_mi250x() {
        // Fig. 6: V100 and MI250X spend a more significant fraction packing.
        let share = |name: &str| {
            let d = g(name);
            d.pack / d.total()
        };
        for small_l2 in ["NV V100 PCIe", "AMD MI250X GCD"] {
            for big_l2 in ["NV GH200", "NV H100 SXM", "NV A100 PCIe"] {
                assert!(
                    share(small_l2) > share(big_l2) * 1.4,
                    "{small_l2} vs {big_l2}"
                );
            }
        }
    }

    #[test]
    fn recent_nvidia_gpus_share_similar_breakdowns() {
        // Fig. 6: GH200 / H100 / A100 have near-identical percentage splits.
        let a = g("NV GH200").shares();
        let b = g("NV A100 PCIe").shares();
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 0.02);
        }
    }

    #[test]
    fn shares_sum_to_one() {
        for d in GRIND_TABLE {
            let s: f64 = d.shares().iter().map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-12, "{}", d.device);
        }
    }

    #[test]
    fn every_catalog_device_has_a_grind_entry() {
        for d in hw::GPUS.iter().chain(hw::CPUS.iter()) {
            assert!(grind_for(d.name).is_some(), "{}", d.name);
        }
    }
}
