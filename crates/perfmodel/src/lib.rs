//! Performance model regenerating the paper's evaluation (Figs. 1–7).
//!
//! No V100/A100/H100/GH200/MI250X or Summit/Frontier is attached to this
//! machine, so device timing is *modelled* rather than measured — but the
//! model's inputs are real: per-kernel FLOP/byte/iteration counts come from
//! the instrumented Rust solver's ledger ([`workload`]), the hardware
//! catalog carries the public spec sheet numbers ([`hw`]), and the
//! communication model runs the same halo-volume arithmetic as the real
//! decomposition ([`scaling`]).
//!
//! Calibration policy (documented per constant in [`calib`]): constants
//! that cannot be derived from first principles on this machine — achieved
//! fraction of peak per kernel class, per-message orchestration overheads —
//! are fitted to the paper's own reported measurements, and every *other*
//! figure is then predicted from them, which is what the integration tests
//! check (who wins, by what factor, where crossovers fall).

pub mod calib;
pub mod ensemble;
pub mod figures;
pub mod fusionmodel;
pub mod hw;
pub mod packmodel;
pub mod projection;
pub mod roofline;
pub mod scaling;
pub mod workload;

pub use calib::{DeviceGrind, GRIND_TABLE, HOST_SIMD_ISSUE_EFFICIENCY};
pub use ensemble::{elastic_lower_bound, lpt_makespan, EnsembleModel, JobCost};
pub use hw::{DeviceKind, DeviceSpec, CONTAINER_HOST_CORE};
pub use projection::{projection_report, ProjectionRow};
pub use roofline::{
    attainable_gflops, predicted_vector_speedup, vector_roofline_cap, RooflinePoint,
    VectorEfficiency,
};
pub use scaling::{ScalingModel, ScalingPoint};
pub use workload::WorkloadProfile;
