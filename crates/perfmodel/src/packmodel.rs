//! Analytic model of array-packing cost (§V's packing analysis).
//!
//! Packing/reshaping kernels are pure data movement whose achieved
//! bandwidth depends on the transpose working set fitting in L2.  The
//! paper measures the consequences — the V100 (900 GB/s, 6 MB L2) packs
//! 3.71x slower and the MI250X GCD (1.6 TB/s, 8 MB L2) 2.62x slower than
//! an A100 (1.935 TB/s, 40 MB) — and reports the MI250X missing L2 three
//! times as often as the A100.
//!
//! Removing the bandwidth ratios from the measured slowdowns leaves the
//! *cache* factors: 1.73x for the V100 and 2.17x for the MI250X.  The
//! MI250X has more L2 than the V100 yet suffers a worse cache factor, so
//! no monotone cache-size-only model can reproduce the data: the miss
//! *penalty* must differ by architecture — exactly the paper's reading
//! ("expensive device-side behavior on current AMD GPUs… could also be a
//! result of poor optimizations by the compiler").  The model is
//!
//! ```text
//! hit(L)   = (kappa L)^2 / ((kappa L)^2 + 1)
//! eff_bw   = bw * (hit + (1 - hit) / penalty(vendor))
//! ```
//!
//! `kappa` is pinned by the reported 3x miss ratio; the NVIDIA penalty by
//! the V100's 1.73x cache factor; the AMD penalty by the MI250X's 2.17x.
//! The H100/GH200 near-unity factors and the ordering of Fig. 6's pack
//! shares are then predictions.

use serde::{Deserialize, Serialize};

use crate::hw::DeviceSpec;

/// Hit-law scale: half of the packing working set hits L2 when
/// `L = 1/kappa ≈ 26.5 MiB`. Pinned by the 3x MI250X/A100 miss ratio.
pub const KAPPA_PER_MIB: f64 = 0.0377;

/// Effective bandwidth degradation on an L2 miss, NVIDIA parts (fitted to
/// the V100's 1.73x cache factor).
pub const MISS_PENALTY_NVIDIA: f64 = 2.19;

/// Ditto for the MI250X under CCE (fitted to its 2.17x cache factor).
pub const MISS_PENALTY_AMD: f64 = 3.04;

/// L2 hit fraction for the streaming transpose working set.
pub fn l2_hit_fraction(spec: &DeviceSpec) -> f64 {
    let t = (KAPPA_PER_MIB * spec.llc_mib).powi(2);
    t / (t + 1.0)
}

fn miss_penalty(spec: &DeviceSpec) -> f64 {
    if spec.name.starts_with("AMD") {
        MISS_PENALTY_AMD
    } else {
        MISS_PENALTY_NVIDIA
    }
}

/// Effective packing bandwidth (GB/s).
pub fn pack_bandwidth_gbs(spec: &DeviceSpec) -> f64 {
    let hit = l2_hit_fraction(spec);
    spec.mem_bw_gbs * (hit + (1.0 - hit) / miss_penalty(spec))
}

/// Modelled pack-time ratio of `a` over `b` (how much slower `a` packs).
pub fn pack_time_ratio(a: &DeviceSpec, b: &DeviceSpec) -> f64 {
    pack_bandwidth_gbs(b) / pack_bandwidth_gbs(a)
}

/// Modelled L2 miss ratio of `a` over `b` (paper: MI250X ≈ 3x A100).
pub fn miss_ratio(a: &DeviceSpec, b: &DeviceSpec) -> f64 {
    (1.0 - l2_hit_fraction(a)) / (1.0 - l2_hit_fraction(b))
}

/// A row of the pack-model report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackModelRow {
    pub device: String,
    pub l2_hit: f64,
    pub effective_bw_gbs: f64,
    pub time_vs_a100: f64,
}

/// Model report over the five GPUs.
pub fn pack_model_report() -> Vec<PackModelRow> {
    let a100 = crate::hw::A100_PCIE;
    crate::hw::GPUS
        .iter()
        .map(|d| PackModelRow {
            device: d.name.to_string(),
            l2_hit: l2_hit_fraction(d),
            effective_bw_gbs: pack_bandwidth_gbs(d),
            time_vs_a100: pack_time_ratio(d, &a100),
        })
        .collect()
}

/// Render the pack-model report.
pub fn render_pack_model(rows: &[PackModelRow]) -> String {
    let mut s = String::from(
        "L2-aware pack-bandwidth model (see EXPERIMENTS.md / Fig 6-7 notes)\n\
         device            L2 hit   eff. GB/s  pack time vs A100\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<17} {:>6.1}% {:>10.0} {:>12.2}x\n",
            r.device,
            100.0 * r.l2_hit,
            r.effective_bw_gbs,
            r.time_vs_a100
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{A100_PCIE, GH200, H100_SXM, MI250X_GCD, V100_PCIE};

    #[test]
    fn v100_ratio_matches_fit_target() {
        let r = pack_time_ratio(&V100_PCIE, &A100_PCIE);
        assert!((r - 3.71).abs() < 0.15, "V100/A100 pack ratio {r}");
    }

    #[test]
    fn mi250x_ratio_matches_fit_target() {
        let r = pack_time_ratio(&MI250X_GCD, &A100_PCIE);
        assert!((r - 2.62).abs() < 0.15, "MI250X/A100 pack ratio {r}");
    }

    #[test]
    fn mi250x_misses_l2_about_three_times_as_often_as_a100() {
        // Pinned by kappa: the paper's kernel-level profile statement.
        let r = miss_ratio(&MI250X_GCD, &A100_PCIE);
        assert!((r - 3.0).abs() < 0.2, "miss ratio {r}");
    }

    #[test]
    fn big_l2_gpus_pack_at_near_full_bandwidth_prediction() {
        // Prediction: GH200/H100/A100 suffer little, matching Fig. 6's
        // similar pack shares on recent NVIDIA parts.
        for spec in [GH200, H100_SXM] {
            let eff = pack_bandwidth_gbs(&spec) / spec.mem_bw_gbs;
            assert!(eff > 0.85, "{}: {eff}", spec.name);
        }
        let a100_eff = pack_bandwidth_gbs(&A100_PCIE) / A100_PCIE.mem_bw_gbs;
        assert!(a100_eff > 0.8, "A100: {a100_eff}");
        let v100_eff = pack_bandwidth_gbs(&V100_PCIE) / V100_PCIE.mem_bw_gbs;
        assert!(v100_eff < 0.55, "V100 small L2 must hurt: {v100_eff}");
    }

    #[test]
    fn model_and_calibration_table_agree_on_pack_ratios() {
        // Cross-check: the independent grind-table calibration and this
        // bandwidth model tell the same packing story.
        use crate::calib::grind_for;
        let table_v100 =
            grind_for("NV V100 PCIe").unwrap().pack / grind_for("NV A100 PCIe").unwrap().pack;
        let model_v100 = pack_time_ratio(&V100_PCIE, &A100_PCIE);
        assert!((table_v100 - model_v100).abs() < 0.2);
        let table_mi =
            grind_for("AMD MI250X GCD").unwrap().pack / grind_for("NV A100 PCIe").unwrap().pack;
        let model_mi = pack_time_ratio(&MI250X_GCD, &A100_PCIE);
        assert!((table_mi - model_mi).abs() < 0.2);
    }

    #[test]
    fn hit_fraction_is_monotone_in_cache_size() {
        let mut specs = [V100_PCIE, MI250X_GCD, A100_PCIE, GH200];
        specs.sort_by(|a, b| a.llc_mib.partial_cmp(&b.llc_mib).unwrap());
        let hits: Vec<f64> = specs.iter().map(l2_hit_fraction).collect();
        assert!(hits.windows(2).all(|w| w[0] <= w[1]), "{hits:?}");
    }
}
