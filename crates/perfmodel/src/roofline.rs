//! Roofline analysis (Fig. 1).

use serde::{Deserialize, Serialize};

use mfc_acc::KernelClass;

use crate::hw::DeviceSpec;

/// Attainable FP64 rate at arithmetic intensity `ai` (FLOP/byte) on a
/// device: `min(peak, ai * bandwidth)`.
pub fn attainable_gflops(spec: &DeviceSpec, ai: f64) -> f64 {
    spec.peak_fp64_gflops.min(ai * spec.mem_bw_gbs)
}

/// One kernel's position on one device's roofline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    pub device: String,
    pub kernel: KernelClass,
    /// Effective arithmetic intensity (FLOP/byte of DRAM traffic).
    pub ai: f64,
    /// Achieved rate (GFLOP/s).
    pub achieved_gflops: f64,
    /// Attainable rate at this AI (GFLOP/s).
    pub attainable_gflops: f64,
    /// Achieved fraction of the device's *peak* (the paper's metric).
    pub peak_fraction: f64,
}

impl RooflinePoint {
    /// Whether the kernel sits left of the ridge (bandwidth-limited).
    pub fn memory_bound(&self, spec: &DeviceSpec) -> bool {
        self.ai < spec.ridge_ai()
    }

    /// Build a point from an achieved-fraction-of-peak calibration.
    pub fn from_peak_fraction(spec: &DeviceSpec, kernel: KernelClass, ai: f64, frac: f64) -> Self {
        RooflinePoint {
            device: spec.name.to_string(),
            kernel,
            ai,
            achieved_gflops: frac * spec.peak_fp64_gflops,
            attainable_gflops: attainable_gflops(spec, ai),
            peak_fraction: frac,
        }
    }
}

/// Effective (cache-aware) arithmetic intensity per kernel class.
///
/// The ledger's byte counts assume every stencil operand comes from DRAM;
/// on a device the 2r+1-point stencil and the multi-variable lines hit in
/// cache, so DRAM traffic is lower by a reuse factor. The factors below
/// are the standard stencil-reuse estimates (one DRAM read per cell per
/// sweep for WENO; none for the pure-copy packs).
pub fn effective_ai(class: KernelClass, ledger_ai: f64) -> f64 {
    let reuse = match class {
        KernelClass::Weno => 5.0,    // 5-point stencil: each cell read once
        KernelClass::Riemann => 1.2, // face states read twice (L/R share)
        KernelClass::Pack => 1.0,    // pure data movement
        _ => 1.0,
    };
    ledger_ai * reuse
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{MI250X_GCD, V100_PCIE};

    #[test]
    fn attainable_clamps_at_peak() {
        assert_eq!(attainable_gflops(&V100_PCIE, 1000.0), 7000.0);
        assert!((attainable_gflops(&V100_PCIE, 1.0) - 900.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_separates_regimes() {
        let spec = V100_PCIE;
        let below = RooflinePoint::from_peak_fraction(&spec, KernelClass::Riemann, 1.0, 0.13);
        let above = RooflinePoint::from_peak_fraction(&spec, KernelClass::Weno, 10.0, 0.45);
        assert!(below.memory_bound(&spec));
        assert!(!above.memory_bound(&spec));
    }

    #[test]
    fn same_ai_is_memory_bound_on_mi250x_but_not_v100() {
        // §IV-A: WENO is compute-bound on V100, memory-bound on MI250X.
        let ai = 10.0;
        assert!(ai > V100_PCIE.ridge_ai());
        assert!(ai < MI250X_GCD.ridge_ai());
    }

    #[test]
    fn achieved_cannot_exceed_attainable_for_calibrated_points() {
        for (spec, class, ai, frac) in [
            (V100_PCIE, KernelClass::Weno, 10.0, 0.45),
            (V100_PCIE, KernelClass::Riemann, 1.1, 0.13),
            (MI250X_GCD, KernelClass::Weno, 10.0, 0.21),
            (MI250X_GCD, KernelClass::Riemann, 1.1, 0.03),
        ] {
            let p = RooflinePoint::from_peak_fraction(&spec, class, ai, frac);
            assert!(
                p.achieved_gflops <= p.attainable_gflops * 1.05,
                "{} {:?}: {} > {}",
                spec.name,
                class,
                p.achieved_gflops,
                p.attainable_gflops
            );
        }
    }

    #[test]
    fn weno_reuse_lifts_ai_above_v100_ridge() {
        // The ledger counts full stencil traffic (AI ~2); the effective AI
        // after stencil reuse must cross the V100 ridge for the paper's
        // "WENO is compute-bound on V100" to reproduce.
        let eff = effective_ai(KernelClass::Weno, 2.0);
        assert!(eff > V100_PCIE.ridge_ai(), "eff = {eff}");
    }
}
