//! Roofline analysis (Fig. 1).

use serde::{Deserialize, Serialize};

use mfc_acc::KernelClass;

use crate::hw::DeviceSpec;

/// Attainable FP64 rate at arithmetic intensity `ai` (FLOP/byte) on a
/// device: `min(peak, ai * bandwidth)`.
pub fn attainable_gflops(spec: &DeviceSpec, ai: f64) -> f64 {
    spec.peak_fp64_gflops.min(ai * spec.mem_bw_gbs)
}

/// One kernel's position on one device's roofline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    pub device: String,
    pub kernel: KernelClass,
    /// Effective arithmetic intensity (FLOP/byte of DRAM traffic).
    pub ai: f64,
    /// Achieved rate (GFLOP/s).
    pub achieved_gflops: f64,
    /// Attainable rate at this AI (GFLOP/s).
    pub attainable_gflops: f64,
    /// Achieved fraction of the device's *peak* (the paper's metric).
    pub peak_fraction: f64,
}

impl RooflinePoint {
    /// Whether the kernel sits left of the ridge (bandwidth-limited).
    pub fn memory_bound(&self, spec: &DeviceSpec) -> bool {
        self.ai < spec.ridge_ai()
    }

    /// Build a point from an achieved-fraction-of-peak calibration.
    pub fn from_peak_fraction(spec: &DeviceSpec, kernel: KernelClass, ai: f64, frac: f64) -> Self {
        RooflinePoint {
            device: spec.name.to_string(),
            kernel,
            ai,
            achieved_gflops: frac * spec.peak_fp64_gflops,
            attainable_gflops: attainable_gflops(spec, ai),
            peak_fraction: frac,
        }
    }
}

/// Lane-tiling summary of a vector-executed run — the accounting behind
/// the OpenACC `vector` analog's efficiency model. The execution context
/// counts whole lane packets and scalar-remainder tail elements
/// (`mfc_acc::Context::lane_stats`); this wraps them into the effective
/// width the roofline projection uses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VectorEfficiency {
    /// Configured lane width `W`.
    pub width: usize,
    /// Whole `W`-wide packets executed.
    pub full_packets: u64,
    /// Elements that fell into scalar remainder tails.
    pub tail_elems: u64,
}

impl VectorEfficiency {
    pub fn new(width: usize, (full_packets, tail_elems): (u64, u64)) -> Self {
        VectorEfficiency {
            width,
            full_packets,
            tail_elems,
        }
    }

    /// Effective lane width `W * full / (full + tail)`: each tail element
    /// costs a full scalar issue slot, so a tiling that degenerates into
    /// tails converges to width 1 worth of throughput per issue. `W` when
    /// no vector launch ran.
    pub fn effective_width(&self) -> f64 {
        let issues = self.full_packets + self.tail_elems;
        if issues == 0 {
            return self.width as f64;
        }
        self.width as f64 * self.full_packets as f64 / issues as f64
    }

    /// Fraction of elements processed in scalar tails (0 when none ran).
    pub fn tail_fraction(&self) -> f64 {
        let elems = self.width as u64 * self.full_packets + self.tail_elems;
        if elems == 0 {
            return 0.0;
        }
        self.tail_elems as f64 / elems as f64
    }
}

/// Memory-roofline cap on the speedup vector lanes can deliver at
/// arithmetic intensity `ai` on `spec`, whose spec-sheet peak counts
/// `hw_width`-wide vector issue. Scalar issue runs at `peak / hw_width`;
/// lanes multiply compute throughput but can never push the kernel past
/// `ai * bandwidth`, so the speedup saturates at
/// `ai * bw / scalar_peak` — 1.0 exactly when the kernel is
/// bandwidth-bound already at scalar issue (no headroom).
pub fn vector_roofline_cap(spec: &DeviceSpec, hw_width: usize, ai: f64) -> f64 {
    let scalar_peak = spec.peak_fp64_gflops / hw_width.max(1) as f64;
    (ai * spec.mem_bw_gbs / scalar_peak).max(1.0)
}

/// Predicted speedup of running at effective lane width `effective_width`
/// over scalar issue: the packet stream retires `min(e, hw_width)` lanes
/// per issue at SIMD issue efficiency `issue_efficiency` (calibrated per
/// host, [`crate::calib::HOST_SIMD_ISSUE_EFFICIENCY`] for CI containers),
/// bounded above by the memory roofline via [`vector_roofline_cap`].
pub fn predicted_vector_speedup(
    effective_width: f64,
    hw_width: usize,
    issue_efficiency: f64,
    roofline_cap: f64,
) -> f64 {
    let lanes = effective_width.clamp(1.0, hw_width.max(1) as f64);
    let compute = 1.0 + (lanes - 1.0) * issue_efficiency;
    compute.min(roofline_cap).max(1.0)
}

/// Effective (cache-aware) arithmetic intensity per kernel class.
///
/// The ledger's byte counts assume every stencil operand comes from DRAM;
/// on a device the 2r+1-point stencil and the multi-variable lines hit in
/// cache, so DRAM traffic is lower by a reuse factor. The factors below
/// are the standard stencil-reuse estimates (one DRAM read per cell per
/// sweep for WENO; none for the pure-copy packs).
pub fn effective_ai(class: KernelClass, ledger_ai: f64) -> f64 {
    let reuse = match class {
        KernelClass::Weno => 5.0,    // 5-point stencil: each cell read once
        KernelClass::Riemann => 1.2, // face states read twice (L/R share)
        KernelClass::Pack => 1.0,    // pure data movement
        _ => 1.0,
    };
    ledger_ai * reuse
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{MI250X_GCD, V100_PCIE};

    #[test]
    fn attainable_clamps_at_peak() {
        assert_eq!(attainable_gflops(&V100_PCIE, 1000.0), 7000.0);
        assert!((attainable_gflops(&V100_PCIE, 1.0) - 900.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_separates_regimes() {
        let spec = V100_PCIE;
        let below = RooflinePoint::from_peak_fraction(&spec, KernelClass::Riemann, 1.0, 0.13);
        let above = RooflinePoint::from_peak_fraction(&spec, KernelClass::Weno, 10.0, 0.45);
        assert!(below.memory_bound(&spec));
        assert!(!above.memory_bound(&spec));
    }

    #[test]
    fn same_ai_is_memory_bound_on_mi250x_but_not_v100() {
        // §IV-A: WENO is compute-bound on V100, memory-bound on MI250X.
        let ai = 10.0;
        assert!(ai > V100_PCIE.ridge_ai());
        assert!(ai < MI250X_GCD.ridge_ai());
    }

    #[test]
    fn achieved_cannot_exceed_attainable_for_calibrated_points() {
        for (spec, class, ai, frac) in [
            (V100_PCIE, KernelClass::Weno, 10.0, 0.45),
            (V100_PCIE, KernelClass::Riemann, 1.1, 0.13),
            (MI250X_GCD, KernelClass::Weno, 10.0, 0.21),
            (MI250X_GCD, KernelClass::Riemann, 1.1, 0.03),
        ] {
            let p = RooflinePoint::from_peak_fraction(&spec, class, ai, frac);
            assert!(
                p.achieved_gflops <= p.attainable_gflops * 1.05,
                "{} {:?}: {} > {}",
                spec.name,
                class,
                p.achieved_gflops,
                p.attainable_gflops
            );
        }
    }

    #[test]
    fn effective_width_degrades_with_tails() {
        // Pure packets: full width. Pure tails: width-1 throughput.
        let clean = VectorEfficiency::new(4, (1000, 0));
        assert!((clean.effective_width() - 4.0).abs() < 1e-12);
        assert_eq!(clean.tail_fraction(), 0.0);
        let dirty = VectorEfficiency::new(4, (0, 1000));
        assert!((dirty.effective_width() - 0.0).abs() < 1e-12);
        assert!((dirty.tail_fraction() - 1.0).abs() < 1e-12);
        // A 24-wide row at W=4: 6 packets, no tail; 25-wide: 6 + 1 tail.
        let row25 = VectorEfficiency::new(4, (6, 1));
        assert!(row25.effective_width() < 4.0 && row25.effective_width() > 3.0);
        // No vector launches: neutral.
        assert_eq!(VectorEfficiency::new(4, (0, 0)).effective_width(), 4.0);
    }

    #[test]
    fn memory_bound_kernels_get_no_vector_headroom() {
        // At AI below the scalar-issue ridge the cap collapses to 1 and
        // the prediction refuses any speedup regardless of lane width.
        let spec = V100_PCIE; // ridge at 7000/900 ≈ 7.8; scalar ridge ≈ 0.24 at hw=32
        let cap = vector_roofline_cap(&spec, 32, 0.1);
        assert_eq!(cap, 1.0);
        assert_eq!(predicted_vector_speedup(8.0, 8, 1.0, cap), 1.0);
        // Compute-bound: full lanes at perfect issue efficiency.
        let cap = vector_roofline_cap(&spec, 32, 100.0);
        assert!((predicted_vector_speedup(4.0, 8, 1.0, cap) - 4.0).abs() < 1e-12);
        // Effective width is clamped to what the hardware can retire.
        assert!((predicted_vector_speedup(8.0, 2, 1.0, cap) - 2.0).abs() < 1e-12);
        // Issue efficiency scales the win linearly below the cap.
        assert!((predicted_vector_speedup(2.0, 2, 0.5, cap) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weno_reuse_lifts_ai_above_v100_ridge() {
        // The ledger counts full stencil traffic (AI ~2); the effective AI
        // after stencil reuse must cross the V100 ridge for the paper's
        // "WENO is compute-bound on V100" to reproduce.
        let eff = effective_ai(KernelClass::Weno, 2.0);
        assert!(eff > V100_PCIE.ridge_ai(), "eff = {eff}");
    }
}
