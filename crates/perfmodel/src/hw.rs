//! Hardware catalog: the devices of Figs. 1 and 5–7.
//!
//! Numbers are nominal public spec-sheet values (peak vector FP64, HBM/DDR
//! bandwidth, last-level cache). They feed the roofline; achieved
//! fractions of these peaks are calibrated separately in [`crate::calib`].

use serde::{Deserialize, Serialize};

/// CPU socket or GPU die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    Gpu,
    Cpu,
}

/// One device's roofline-relevant specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub kind: DeviceKind,
    /// Peak double-precision rate (GFLOP/s).
    pub peak_fp64_gflops: f64,
    /// Peak memory bandwidth (GB/s).
    pub mem_bw_gbs: f64,
    /// Last-level (L2/L3) cache (MiB).
    pub llc_mib: f64,
}

impl DeviceSpec {
    /// Ridge-point arithmetic intensity (FLOP/byte) separating memory- and
    /// compute-bound kernels.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_fp64_gflops / self.mem_bw_gbs
    }
}

/// NVIDIA GH200 (Hopper die): 34 TF FP64 vector, 4 TB/s HBM3e, 50 MB L2.
pub const GH200: DeviceSpec = DeviceSpec {
    name: "NV GH200",
    kind: DeviceKind::Gpu,
    peak_fp64_gflops: 34_000.0,
    mem_bw_gbs: 4000.0,
    llc_mib: 50.0,
};

/// NVIDIA H100 SXM: 34 TF FP64 vector, 3.35 TB/s HBM3, 50 MB L2.
pub const H100_SXM: DeviceSpec = DeviceSpec {
    name: "NV H100 SXM",
    kind: DeviceKind::Gpu,
    peak_fp64_gflops: 34_000.0,
    mem_bw_gbs: 3350.0,
    llc_mib: 50.0,
};

/// NVIDIA A100 PCIe: 9.7 TF FP64 vector, 1.935 TB/s HBM2e, 40 MB L2.
pub const A100_PCIE: DeviceSpec = DeviceSpec {
    name: "NV A100 PCIe",
    kind: DeviceKind::Gpu,
    peak_fp64_gflops: 9_700.0,
    mem_bw_gbs: 1935.0,
    llc_mib: 40.0,
};

/// NVIDIA V100 PCIe: 7.0 TF FP64, 900 GB/s HBM2, 6 MB L2 (the paper rounds
/// A100's 72% statement from these).
pub const V100_PCIE: DeviceSpec = DeviceSpec {
    name: "NV V100 PCIe",
    kind: DeviceKind::Gpu,
    peak_fp64_gflops: 7_000.0,
    mem_bw_gbs: 900.0,
    llc_mib: 6.0,
};

/// One MI250X graphics compute die: ~24 TF FP64 vector, 1.6 TB/s HBM2e,
/// 8 MB L2 — the small L2 the paper blames for packing cost.
pub const MI250X_GCD: DeviceSpec = DeviceSpec {
    name: "AMD MI250X GCD",
    kind: DeviceKind::Gpu,
    peak_fp64_gflops: 23_950.0,
    mem_bw_gbs: 1600.0,
    llc_mib: 8.0,
};

/// AMD EPYC 9654 "Genoa": 96 cores, ~5.4 TF FP64, 460 GB/s DDR5.
pub const EPYC_GENOA: DeviceSpec = DeviceSpec {
    name: "AMD EPYC 9654 Genoa",
    kind: DeviceKind::Cpu,
    peak_fp64_gflops: 5_400.0,
    mem_bw_gbs: 460.0,
    llc_mib: 384.0,
};

/// Intel Xeon Max 9468 "Sapphire Rapids HBM": 48 cores, ~3 TF, HBM2e.
pub const XEON_MAX: DeviceSpec = DeviceSpec {
    name: "Intel Xeon Max 9468",
    kind: DeviceKind::Cpu,
    peak_fp64_gflops: 3_000.0,
    mem_bw_gbs: 1000.0,
    llc_mib: 105.0,
};

/// NVIDIA Grace (ARM Neoverse V2): 72 cores, ~3.4 TF, 500 GB/s LPDDR5X.
pub const GRACE: DeviceSpec = DeviceSpec {
    name: "NV Grace CPU",
    kind: DeviceKind::Cpu,
    peak_fp64_gflops: 3_400.0,
    mem_bw_gbs: 500.0,
    llc_mib: 114.0,
};

/// IBM Power10 socket: ~1.6 TF, 409 GB/s OMI.
pub const POWER10: DeviceSpec = DeviceSpec {
    name: "IBM Power10",
    kind: DeviceKind::Cpu,
    peak_fp64_gflops: 1_600.0,
    mem_bw_gbs: 409.0,
    llc_mib: 120.0,
};

/// One core of a generic container-class x86-64 host — what the perf
/// snapshot and CI runners execute on. Nominal numbers: ~2 FP64
/// ops/cycle/lane at ~2 GHz through a 2-wide SSE2 pipe (8 GFLOP/s vector
/// peak, 4 scalar), and ~15 GB/s of per-core DRAM bandwidth. The vector-
/// efficiency gate only uses the *ratio* `scalar_peak / bandwidth` (the
/// scalar-issue ridge at 0.27 FLOP/byte), and the sweep kernels sit well
/// above it, so modest spec errors cannot flip the headroom verdict.
pub const CONTAINER_HOST_CORE: DeviceSpec = DeviceSpec {
    name: "container x86-64 core",
    kind: DeviceKind::Cpu,
    peak_fp64_gflops: 8.0,
    mem_bw_gbs: 15.0,
    llc_mib: 8.0,
};

/// The five GPUs of Figs. 5–7, in the paper's column order.
pub const GPUS: [DeviceSpec; 5] = [GH200, H100_SXM, A100_PCIE, V100_PCIE, MI250X_GCD];

/// The four CPUs of Fig. 5.
pub const CPUS: [DeviceSpec; 4] = [EPYC_GENOA, XEON_MAX, GRACE, POWER10];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi250x_ridge_is_higher_than_v100() {
        // §IV-A: the MI250X memory→compute transition sits at an
        // arithmetic intensity several times the V100's.
        let ratio = MI250X_GCD.ridge_ai() / V100_PCIE.ridge_ai();
        assert!(ratio > 1.5, "ratio = {ratio}");
    }

    #[test]
    fn v100_has_72_percent_of_a100_peak() {
        let frac = V100_PCIE.peak_fp64_gflops / A100_PCIE.peak_fp64_gflops;
        assert!((frac - 0.72).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn mi250x_gcd_has_2_5x_a100_peak_and_one_fifth_l2() {
        assert!((MI250X_GCD.peak_fp64_gflops / A100_PCIE.peak_fp64_gflops - 2.5).abs() < 0.05);
        assert!((MI250X_GCD.llc_mib / A100_PCIE.llc_mib - 0.2).abs() < 0.01);
    }

    #[test]
    fn bandwidth_ordering_matches_paper() {
        // §V: V100 900 GB/s, A100 2 TB/s, H100 3.35 TB/s, GH200 4 TB/s.
        let bw = [
            V100_PCIE.mem_bw_gbs,
            A100_PCIE.mem_bw_gbs,
            H100_SXM.mem_bw_gbs,
            GH200.mem_bw_gbs,
        ];
        assert!(bw.windows(2).all(|w| w[0] < w[1]), "{bw:?}");
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<_> = GPUS.iter().chain(CPUS.iter()).map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
