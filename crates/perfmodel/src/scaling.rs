//! Weak/strong scaling model of Summit and Frontier (Figs. 2–4).
//!
//! Per time step, one device pays:
//!
//! ```text
//! T = grind * cells * neq * rhs_evals                  (compute)
//!   + rhs_evals * sum_faces [ msg_time(face_bytes) ]   (halo bandwidth+latency)
//!   + rhs_evals * messages * t_overhead                (pack/unpack, launch, sync)
//!   + gamma * log2(max(P, 128) / 128)                  (jitter/contention beyond base scale)
//! ```
//!
//! The collective/jitter term is zero at and below the 128-device base
//! scale: a tree allreduce at those counts costs microseconds; the
//! measurable weak-scaling loss at O(10^4) devices is network contention
//! and OS jitter, which is what `gamma` absorbs.
//!
//! `msg_time` carries the GPU-aware vs host-staged distinction
//! ([`mfc_mpsim::CommParams`]); `t_overhead` and `gamma` are calibrated to
//! the paper's reported efficiencies (84% Summit strong at 8x; 81%/92%
//! Frontier strong at 16x without/with GPU-aware MPI; 97%/95% weak
//! scaling) and then reused for every other point on the curves.

use serde::{Deserialize, Serialize};

use mfc_mpsim::{CommParams, Staging};

/// One machine's model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: &'static str,
    /// Grind time of one device (ns / cell / PDE / RHS), from the
    /// calibrated table.
    pub grind_ns: f64,
    /// Interconnect parameters.
    pub comm: CommParams,
    /// Fixed orchestration cost per halo message (s): buffer pack/unpack
    /// kernels, launch latency, synchronization. Fitted.
    pub per_msg_overhead_s: f64,
    /// Collective/jitter coefficient (s per log2(P) per step). Fitted.
    pub collective_coeff_s: f64,
    /// PDE count of the benchmark problem (2-phase 3-D: 7).
    pub neq: usize,
    /// RHS evaluations per step (RK3: 3).
    pub rhs_per_step: usize,
    /// Ghost layers exchanged (WENO5: 3).
    pub ng: usize,
}

impl MachineModel {
    /// OLCF Summit: V100 devices, CUDA-aware MPI.
    pub fn summit() -> Self {
        MachineModel {
            name: "OLCF Summit (V100)",
            grind_ns: 2.40,
            comm: CommParams::summit(Staging::DeviceDirect),
            per_msg_overhead_s: 523e-6,
            collective_coeff_s: 2.0e-3,
            neq: 7,
            rhs_per_step: 3,
            ng: 3,
        }
    }

    /// OLCF Frontier: MI250X GCDs; `staging` selects GPU-aware vs
    /// host-staged MPI (Fig. 4's comparison).
    pub fn frontier(staging: Staging) -> Self {
        MachineModel {
            name: "OLCF Frontier (MI250X GCD)",
            grind_ns: 1.70,
            comm: CommParams::frontier(staging),
            per_msg_overhead_s: match staging {
                Staging::DeviceDirect => 238e-6,
                Staging::HostStaged => 797e-6,
            },
            collective_coeff_s: 2.0e-3,
            neq: 7,
            rhs_per_step: 3,
            ng: 3,
        }
    }

    /// Modelled wall time of one time step.
    pub fn step_time(&self, devices: usize, cells_per_device: f64) -> f64 {
        let compute =
            self.grind_ns * 1e-9 * cells_per_device * self.neq as f64 * self.rhs_per_step as f64;
        // Near-cubic block: the decomposition the paper uses.
        let edge = cells_per_device.cbrt();
        let face_bytes = edge * edge * self.ng as f64 * self.neq as f64 * 8.0;
        // Six faces exchanged per RHS evaluation (both directions of the
        // three split axes); none when running on a single device.
        let faces = if devices > 1 { 6 } else { 0 };
        let halo = self.rhs_per_step as f64
            * faces as f64
            * (self.comm.message_time(face_bytes) + self.per_msg_overhead_s);
        let collective =
            self.collective_coeff_s * (devices.max(128) as f64 / 128.0).log2().max(0.0);
        compute + halo + collective
    }

    /// Split a near-cubic block into (interior, shell) cell counts: the
    /// interior is inset `ng` cells from every face (the cells whose
    /// stencils never touch a ghost layer), the shell is the rest.
    pub fn interior_shell_split(&self, devices: usize, cells_per_device: f64) -> (f64, f64) {
        if devices <= 1 {
            // Nothing is exchanged, so nothing needs to hide.
            return (cells_per_device, 0.0);
        }
        let edge = cells_per_device.cbrt();
        let inner = (edge - 2.0 * self.ng as f64).max(0.0);
        let interior = inner * inner * inner;
        (interior, cells_per_device - interior)
    }

    /// Total halo time of one step (bandwidth + latency + per-message
    /// orchestration), before any of it hides behind compute.
    pub fn comm_time(&self, devices: usize, cells_per_device: f64) -> f64 {
        let edge = cells_per_device.cbrt();
        let face_bytes = edge * edge * self.ng as f64 * self.neq as f64 * 8.0;
        let faces = if devices > 1 { 6 } else { 0 };
        self.rhs_per_step as f64
            * faces as f64
            * (self.comm.message_time(face_bytes) + self.per_msg_overhead_s)
    }

    /// Modelled wall time of one step with the overlapped exchange: the
    /// halo messages hide behind the interior sweeps, so the step pays
    /// `max(t_comm, t_interior) + t_shell` instead of `t_comm + t_compute`.
    pub fn step_time_overlapped(&self, devices: usize, cells_per_device: f64) -> f64 {
        let per_cell = self.grind_ns * 1e-9 * self.neq as f64 * self.rhs_per_step as f64;
        let (interior, shell) = self.interior_shell_split(devices, cells_per_device);
        let t_interior = per_cell * interior;
        let t_shell = per_cell * shell;
        let t_comm = self.comm_time(devices, cells_per_device);
        let collective =
            self.collective_coeff_s * (devices.max(128) as f64 / 128.0).log2().max(0.0);
        t_comm.max(t_interior) + t_shell + collective
    }

    /// Communication time still exposed (not hidden behind the interior
    /// sweeps) per step under the overlapped exchange.
    pub fn exposed_comm_s(&self, devices: usize, cells_per_device: f64) -> f64 {
        let per_cell = self.grind_ns * 1e-9 * self.neq as f64 * self.rhs_per_step as f64;
        let (interior, _) = self.interior_shell_split(devices, cells_per_device);
        (self.comm_time(devices, cells_per_device) - per_cell * interior).max(0.0)
    }
}

/// One point of a scaling study.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    pub devices: usize,
    pub cells_per_device: f64,
    pub step_time_s: f64,
    /// Weak: T(base)/T(P). Strong: T(base)·P_base / (T(P)·P).
    pub efficiency: f64,
    /// Wall time normalized by the base case (Fig. 2's y-axis).
    pub normalized_time: f64,
}

/// The scaling model driver.
#[derive(Debug, Clone, Copy)]
pub struct ScalingModel {
    pub machine: MachineModel,
    /// Model the overlapped exchange
    /// ([`MachineModel::step_time_overlapped`]) instead of the exposed
    /// one. Off by default; the calibrated efficiencies of Figs. 2–4 are
    /// fitted with the exchange exposed, as the paper measured it.
    pub overlap: bool,
}

impl ScalingModel {
    pub fn new(machine: MachineModel) -> Self {
        ScalingModel {
            machine,
            overlap: false,
        }
    }

    /// A model of the same machine running the overlapped exchange.
    pub fn overlapped(machine: MachineModel) -> Self {
        ScalingModel {
            machine,
            overlap: true,
        }
    }

    fn step(&self, devices: usize, cells_per_device: f64) -> f64 {
        if self.overlap {
            self.machine.step_time_overlapped(devices, cells_per_device)
        } else {
            self.machine.step_time(devices, cells_per_device)
        }
    }

    /// Weak scaling: constant `cells_per_device`, device counts in
    /// `series` (first entry is the base).
    pub fn weak(&self, cells_per_device: f64, series: &[usize]) -> Vec<ScalingPoint> {
        let base = self.step(series[0], cells_per_device);
        series
            .iter()
            .map(|&p| {
                let t = self.step(p, cells_per_device);
                ScalingPoint {
                    devices: p,
                    cells_per_device,
                    step_time_s: t,
                    efficiency: base / t,
                    normalized_time: t / base,
                }
            })
            .collect()
    }

    /// Strong scaling: constant `global_cells`, device counts in `series`
    /// (first entry is the base).
    pub fn strong(&self, global_cells: f64, series: &[usize]) -> Vec<ScalingPoint> {
        let base_p = series[0];
        let base = self.step(base_p, global_cells / base_p as f64);
        series
            .iter()
            .map(|&p| {
                let cells = global_cells / p as f64;
                let t = self.step(p, cells);
                ScalingPoint {
                    devices: p,
                    cells_per_device: cells,
                    step_time_s: t,
                    efficiency: (base * base_p as f64) / (t * p as f64),
                    normalized_time: t / base,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_weak_scaling_hits_97_percent() {
        // Fig. 2a: 128 → 13824 V100s at 97% efficiency.
        let m = ScalingModel::new(MachineModel::summit());
        let pts = m.weak(8.0e6, &[128, 1024, 13824]);
        let eff = pts.last().unwrap().efficiency;
        assert!((eff - 0.97).abs() < 0.015, "eff = {eff}");
    }

    #[test]
    fn frontier_weak_scaling_hits_95_percent() {
        // Fig. 2b: 128 → 65536 GCDs at 95% efficiency.
        let m = ScalingModel::new(MachineModel::frontier(Staging::HostStaged));
        let pts = m.weak(8.0e6, &[128, 4096, 65536]);
        let eff = pts.last().unwrap().efficiency;
        assert!((eff - 0.95).abs() < 0.015, "eff = {eff}");
    }

    #[test]
    fn summit_strong_scaling_84_percent_at_8x() {
        // Fig. 3a: 8M cells/GPU base, 84% at 8x devices.
        let m = ScalingModel::new(MachineModel::summit());
        let base_p = 8;
        let global = 8.0e6 * base_p as f64;
        let pts = m.strong(global, &[base_p, 8 * base_p]);
        let eff = pts.last().unwrap().efficiency;
        assert!((eff - 0.84).abs() < 0.02, "eff = {eff}");
    }

    #[test]
    fn frontier_strong_scaling_81_vs_92_percent_at_16x() {
        // Figs. 3b/4: 32M cells/GCD base; 81% host-staged, 92% GPU-aware.
        let base_p = 8;
        let global = 32.0e6 * base_p as f64;
        let staged = ScalingModel::new(MachineModel::frontier(Staging::HostStaged))
            .strong(global, &[base_p, 16 * base_p]);
        let aware = ScalingModel::new(MachineModel::frontier(Staging::DeviceDirect))
            .strong(global, &[base_p, 16 * base_p]);
        let e_staged = staged.last().unwrap().efficiency;
        let e_aware = aware.last().unwrap().efficiency;
        assert!((e_staged - 0.81).abs() < 0.025, "staged eff = {e_staged}");
        assert!((e_aware - 0.92).abs() < 0.025, "aware eff = {e_aware}");
        assert!(e_aware > e_staged + 0.08);
    }

    #[test]
    fn smaller_problems_scale_worse() {
        // Fig. 3: the 16M-cells/GCD series sits below the 32M series and
        // flattens out.
        let m = ScalingModel::new(MachineModel::frontier(Staging::HostStaged));
        let base_p = 8;
        let big = m.strong(32.0e6 * base_p as f64, &[base_p, 16 * base_p]);
        let small = m.strong(16.0e6 * base_p as f64, &[base_p, 16 * base_p]);
        assert!(small.last().unwrap().efficiency < big.last().unwrap().efficiency - 0.03);
    }

    #[test]
    fn strong_scaling_wall_time_flattens_at_extreme_counts() {
        let m = ScalingModel::new(MachineModel::frontier(Staging::HostStaged));
        let base_p = 8;
        let pts = m.strong(16.0e6 * base_p as f64, &[base_p, 64 * base_p, 256 * base_p]);
        // Device count x4 between the last two points, but wall time
        // improves by far less than 4x (the Fig. 3 flatline).
        let speedup = pts[1].step_time_s / pts[2].step_time_s;
        assert!(speedup < 2.0, "speedup = {speedup}");
    }

    #[test]
    fn weak_scaling_time_is_flat_in_absolute_terms() {
        let m = ScalingModel::new(MachineModel::summit());
        let pts = m.weak(8.0e6, &[128, 13824]);
        assert!(pts[1].normalized_time < 1.05);
    }

    #[test]
    fn single_device_pays_no_halo() {
        let m = MachineModel::summit();
        let t1 = m.step_time(1, 8.0e6);
        let t2 = m.step_time(2, 8.0e6);
        assert!(t2 > t1);
    }

    #[test]
    fn overlap_never_slows_a_step() {
        // t = max(t_comm, t_interior) + t_shell <= t_comm + t_compute,
        // since t_interior + t_shell = t_compute.
        for m in [
            MachineModel::summit(),
            MachineModel::frontier(Staging::HostStaged),
            MachineModel::frontier(Staging::DeviceDirect),
        ] {
            for cells in [1.0e6, 8.0e6, 32.0e6] {
                for p in [1usize, 8, 128, 2048] {
                    let plain = m.step_time(p, cells);
                    let over = m.step_time_overlapped(p, cells);
                    assert!(over <= plain + 1e-15, "{}: {over} > {plain}", m.name);
                }
            }
        }
    }

    #[test]
    fn overlap_hides_comm_when_interior_dominates() {
        // 32M cells/GCD: the interior sweep is far longer than the halo
        // messages, so almost all the comm time hides and the exposed
        // remainder is zero.
        let m = MachineModel::frontier(Staging::HostStaged);
        let exposed = m.exposed_comm_s(128, 32.0e6);
        assert_eq!(exposed, 0.0, "exposed = {exposed}");
        let saved = m.step_time(128, 32.0e6) - m.step_time_overlapped(128, 32.0e6);
        let comm = m.comm_time(128, 32.0e6);
        assert!((saved - comm).abs() < 1e-12);
    }

    #[test]
    fn overlap_cannot_hide_comm_on_tiny_blocks() {
        // A deeply strong-scaled block has almost no interior left, so
        // the messages stay mostly exposed.
        let m = MachineModel::frontier(Staging::HostStaged);
        let cells = 5.0e4; // ~37^3: interior (37-6)^3 is ~60% of cells
        let exposed = m.exposed_comm_s(2048, cells);
        let comm = m.comm_time(2048, cells);
        assert!(exposed > 0.5 * comm, "exposed {exposed} of {comm}");
    }

    #[test]
    fn overlap_improves_strong_scaling_efficiency() {
        let base_p = 8;
        let global = 32.0e6 * base_p as f64;
        let plain = ScalingModel::new(MachineModel::frontier(Staging::HostStaged))
            .strong(global, &[base_p, 16 * base_p]);
        let over = ScalingModel::overlapped(MachineModel::frontier(Staging::HostStaged))
            .strong(global, &[base_p, 16 * base_p]);
        let e_plain = plain.last().unwrap().efficiency;
        let e_over = over.last().unwrap().efficiency;
        assert!(e_over > e_plain, "{e_over} <= {e_plain}");
    }

    #[test]
    fn overlap_off_is_byte_identical_to_the_calibrated_model() {
        // ScalingModel::new must keep producing the fitted Fig. 2–4
        // numbers bit for bit; the overlap flag only adds a new path.
        let m = ScalingModel::new(MachineModel::summit());
        for p in m.weak(8.0e6, &[128, 1024, 13824]) {
            let direct = m.machine.step_time(p.devices, p.cells_per_device);
            assert_eq!(p.step_time_s.to_bits(), direct.to_bits());
        }
    }
}
