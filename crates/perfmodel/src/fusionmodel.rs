//! Bytes-moved model of the staged vs fused RHS sweep pipelines.
//!
//! The fused pencil engine (`mfc_core::fused`) wins on a memory-bound core
//! for two structural reasons, both of which this model counts exactly
//! from the per-item byte declarations at the launch sites:
//!
//! 1. **No grid-sized packed buffers.** The staged pipeline reshapes the
//!    full primitive state once per y/z sweep (16 B per element: one read,
//!    one write); the fused engine gathers only the *interior* transverse
//!    lines into per-pencil scratch and the x sweep needs no copy at all.
//! 2. **No dead ghost-line work.** The staged WENO/Riemann kernels process
//!    every transverse line of the padded buffer, but the update stage
//!    only ever reads faces on interior transverse coordinates — a
//!    `1 - (n/(n+2*ng))^2` fraction of the sweep work per axis is
//!    discarded. The fused engine simply never computes it.
//!
//! Because both pipelines declare identical per-item costs for the work
//! they *do* perform, the model's staged/fused ratio is a pure function of
//! the item counts, and the ledger-measured ratio must land on it — the
//! `ablation_fusion` bench and the perf snapshot check both (within 25%,
//! per the acceptance criterion; the agreement is exact up to rounding).

use serde::{Deserialize, Serialize};

use mfc_acc::KernelStats;

/// Sweep-stage labels of the staged pipeline.
pub const STAGED_LABELS: [&str; 5] = [
    "s_reshape_sweep_y",
    "s_reshape_sweep_z",
    "s_weno_reconstruct",
    "s_riemann_solve",
    "s_flux_divergence",
];

/// Sweep-stage labels of the fused pencil engine (the `s_fused_sweep`
/// marker carries no stage traffic and is excluded on purpose).
pub const FUSED_LABELS: [&str; 4] = [
    "f_sweep_gather",
    "f_weno_reconstruct",
    "f_riemann_solve",
    "f_flux_divergence",
];

/// Shape of the problem one RHS evaluation sweeps.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepShape {
    /// Interior cells per axis (inactive axes 1).
    pub n: [usize; 3],
    /// Active dimensions.
    pub ndim: usize,
    /// Ghost layers of the domain (3 for WENO5).
    pub ng: usize,
    /// Equations in the state vector.
    pub neq: usize,
    /// Ghost layers the reconstruction stencil reads (may be narrower
    /// than `ng` when the recovery ladder degrades the order).
    pub stencil: usize,
}

impl SweepShape {
    fn ext(&self, d: usize) -> usize {
        if d < self.ndim {
            self.n[d] + 2 * self.ng
        } else {
            1
        }
    }

    /// Ghost-inclusive transverse extent product for a sweep along `axis`.
    fn t_full(&self, axis: usize) -> usize {
        let mut t = 1;
        for d in 0..3 {
            if d != axis {
                t *= self.ext(d);
            }
        }
        t
    }

    /// Interior transverse extent product for a sweep along `axis`.
    fn t_int(&self, axis: usize) -> usize {
        let mut t = 1;
        for (d, &nd) in self.n.iter().enumerate() {
            if d != axis {
                t *= nd;
            }
        }
        t
    }
}

/// Declared bytes moved by the sweep stages of one RHS evaluation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SweepTraffic {
    /// Pack/reshape (staged) or pencil gather (fused) bytes.
    pub pack: f64,
    pub weno: f64,
    pub riemann: f64,
    pub update: f64,
}

impl SweepTraffic {
    pub fn total(&self) -> f64 {
        self.pack + self.weno + self.riemann + self.update
    }
}

/// Per-item byte declarations, mirrored from the launch sites.
fn pack_bytes() -> f64 {
    8.0 + 8.0
}
fn weno_bytes(stencil: usize) -> f64 {
    8.0 * (2 * stencil + 1) as f64 + 2.0 * 8.0
}
fn riemann_bytes(neq: usize) -> f64 {
    2.0 * 8.0 * neq as f64 + 8.0 * (neq + 1) as f64
}
fn update_bytes(neq: usize) -> f64 {
    8.0 * 2.0 * (neq + 1) as f64 + 8.0 * (neq + 1) as f64
}

/// Declared sweep traffic of one *staged* RHS evaluation.
pub fn staged_traffic(s: &SweepShape) -> SweepTraffic {
    let mut t = SweepTraffic::default();
    let grid4 = (s.ext(0) * s.ext(1) * s.ext(2) * s.neq) as f64;
    for axis in 0..s.ndim {
        if axis > 0 {
            // Full-grid y/z reshape into the coalesced buffer.
            t.pack += grid4 * pack_bytes();
        }
        let nf = (s.n[axis] + 1) as f64;
        let tf = s.t_full(axis) as f64;
        t.weno += nf * tf * s.neq as f64 * weno_bytes(s.stencil);
        t.riemann += nf * tf * riemann_bytes(s.neq);
        t.update += (s.n[axis] * s.t_int(axis)) as f64 * update_bytes(s.neq);
    }
    t
}

/// Declared sweep traffic of one *fused* RHS evaluation.
pub fn fused_traffic(s: &SweepShape) -> SweepTraffic {
    let mut t = SweepTraffic::default();
    for axis in 0..s.ndim {
        let ti = s.t_int(axis) as f64;
        if axis > 0 {
            // Interior pencil lines gathered into cache-resident scratch;
            // the x sweep reads the canonical buffer in place.
            t.pack += ti * (s.ext(axis) * s.neq) as f64 * pack_bytes();
        }
        let nf = (s.n[axis] + 1) as f64;
        t.weno += nf * ti * s.neq as f64 * weno_bytes(s.stencil);
        t.riemann += nf * ti * riemann_bytes(s.neq);
        t.update += (s.n[axis] as f64) * ti * update_bytes(s.neq);
    }
    t
}

/// Modelled staged/fused bytes-moved ratio (> 1: fusion reduces traffic).
pub fn traffic_ratio(s: &SweepShape) -> f64 {
    staged_traffic(s).total() / fused_traffic(s).total()
}

/// Sum the declared sweep-stage bytes (read + written) recorded in a
/// ledger snapshot, selecting the staged or fused label set.
pub fn measured_sweep_bytes(stats: &[KernelStats], fused: bool) -> f64 {
    let labels: &[&str] = if fused { &FUSED_LABELS } else { &STAGED_LABELS };
    stats
        .iter()
        .filter(|k| labels.contains(&k.label.as_str()))
        .map(|k| k.bytes_read + k.bytes_written)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_acc::Context;
    use mfc_core::case::presets;
    use mfc_core::rhs::RhsMode;
    use mfc_core::solver::{DtMode, Solver, SolverConfig};

    fn bench_shape(n: usize) -> SweepShape {
        SweepShape {
            n: [n, n, n],
            ndim: 3,
            ng: 3,
            neq: 7,
            stencil: 3,
        }
    }

    #[test]
    fn fusion_reduces_traffic_and_more_so_on_small_blocks() {
        let r24 = traffic_ratio(&bench_shape(24));
        let r64 = traffic_ratio(&bench_shape(64));
        assert!(r24 > 1.25, "24^3 staged/fused ratio {r24}");
        assert!(
            r24 > r64 && r64 > 1.0,
            "ghost fraction shrinks with n: {r24} vs {r64}"
        );
    }

    #[test]
    fn ledger_measured_traffic_matches_the_model() {
        // Run the same fixed steps under both modes and compare the
        // declared ledger bytes to the analytic counts: the model *is* the
        // launch-site accounting, so agreement is exact up to rounding.
        let n = 12;
        let case = presets::two_phase_benchmark(3, [n, n, n]);
        let steps = 2;
        let mut measured = [0.0f64; 2];
        for (slot, mode) in [RhsMode::Staged, RhsMode::Fused].into_iter().enumerate() {
            let mut cfg = SolverConfig {
                dt: DtMode::Fixed(1e-6),
                ..Default::default()
            };
            cfg.rhs.mode = mode;
            let mut solver = Solver::new(&case, cfg, Context::serial());
            solver.run_steps(steps).unwrap();
            let stats = solver.context().ledger().kernel_stats();
            measured[slot] = measured_sweep_bytes(&stats, mode == RhsMode::Fused);
        }
        let shape = bench_shape(n);
        let evals = (steps * 3) as f64; // RK3: 3 RHS evaluations per step
        let staged = staged_traffic(&shape).total() * evals;
        let fused = fused_traffic(&shape).total() * evals;
        assert!(
            (measured[0] - staged).abs() / staged < 1e-12,
            "staged measured {} vs model {}",
            measured[0],
            staged
        );
        assert!(
            (measured[1] - fused).abs() / fused < 1e-12,
            "fused measured {} vs model {}",
            measured[1],
            fused
        );
        // The acceptance criterion's 25% envelope is therefore met with
        // enormous margin.
        let ratio = measured[0] / measured[1];
        let model = traffic_ratio(&shape);
        assert!((ratio / model - 1.0).abs() < 0.25);
    }

    #[test]
    fn lower_dimensional_sweeps_are_covered() {
        let s1 = SweepShape {
            n: [64, 1, 1],
            ndim: 1,
            ng: 3,
            neq: 5,
            stencil: 3,
        };
        let t = staged_traffic(&s1);
        assert_eq!(t.pack, 0.0, "1-D has no reshape");
        assert!(traffic_ratio(&s1) >= 1.0);
        let s2 = SweepShape {
            n: [48, 48, 1],
            ndim: 2,
            ng: 3,
            neq: 6,
            stencil: 3,
        };
        assert!(traffic_ratio(&s2) > 1.0);
    }
}
