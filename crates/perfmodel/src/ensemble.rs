//! Ensemble makespan model for the `mfc-sched` scheduler.
//!
//! The paper's campaigns submit many cases to a batch queue; the
//! reproduction's `mfc-serve` multiplexes them onto a shared worker
//! budget. This module predicts the ensemble makespan from per-job cost
//! estimates so `bench_snapshot` can gate the scheduler's measured
//! throughput against a model:
//!
//! * each job's cost is its grind work, `cells × steps × RK stages`
//!   (the denominator of the paper's grind-time metric), converted to
//!   seconds with a measured serial rate;
//! * [`lpt_makespan`] is the classic greedy Longest-Processing-Time
//!   bound for *rigid* one-worker jobs on `slots` machines — an upper
//!   bound the elastic scheduler should meet or beat, and within
//!   4/3 − 1/(3·slots) of optimal;
//! * [`elastic_lower_bound`] is `max(total/slots, longest/slots)` — no
//!   schedule can beat the work bound, and even a fully elastic job
//!   cannot finish faster than perfectly parallelized on every slot.
//!
//! On a host with fewer cores than the budget, the effective slot count
//! is `min(budget, host_cores)`: oversubscribed workers timeshare one
//! core and add no throughput (the bench axis passes the measured host
//! core count for exactly this reason).

/// Work estimate for one job, in grind units (cell·stage updates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobCost {
    /// Interior cells of the job's grid.
    pub cells: usize,
    /// Steps the job will take.
    pub steps: u64,
    /// RK stages per step.
    pub stages: u32,
}

impl JobCost {
    /// Cell·stage updates this job performs.
    pub fn work(&self) -> f64 {
        self.cells as f64 * self.steps as f64 * self.stages as f64
    }

    /// Seconds at a measured serial rate (`sec_per_cell_stage`).
    pub fn seconds(&self, sec_per_cell_stage: f64) -> f64 {
        self.work() * sec_per_cell_stage
    }
}

/// Greedy LPT makespan (seconds) for rigid one-worker jobs on `slots`
/// identical machines: sort by descending cost, place each job on the
/// least-loaded slot. `slots` is clamped to ≥ 1.
pub fn lpt_makespan(costs: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut order: Vec<f64> = costs.to_vec();
    order.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut load = vec![0.0f64; slots];
    for c in order {
        // Deterministic argmin: first slot with the smallest load.
        let mut best = 0usize;
        for (i, l) in load.iter().enumerate() {
            if *l < load[best] {
                best = i;
            }
        }
        load[best] += c;
    }
    load.iter().cloned().fold(0.0, f64::max)
}

/// Lower bound (seconds) no schedule — elastic or not — can beat:
/// the work bound `total/slots` (and trivially the longest job spread
/// across every slot, which the work bound already dominates for
/// non-negative costs).
pub fn elastic_lower_bound(costs: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1).min(costs.len().max(1));
    let total: f64 = costs.iter().sum();
    total / slots as f64
}

/// Model vs. measurement for one ensemble run.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleModel {
    /// Greedy LPT bound, seconds.
    pub lpt_s: f64,
    /// Work lower bound, seconds.
    pub lower_s: f64,
    /// Measured makespan, seconds.
    pub measured_s: f64,
}

impl EnsembleModel {
    /// Build from job costs, a measured serial rate, the effective slot
    /// count (`min(budget, host_cores)`), and the measured makespan.
    pub fn from_costs(
        costs: &[JobCost],
        sec_per_cell_stage: f64,
        slots: usize,
        measured_s: f64,
    ) -> Self {
        let secs: Vec<f64> = costs
            .iter()
            .map(|c| c.seconds(sec_per_cell_stage))
            .collect();
        EnsembleModel {
            lpt_s: lpt_makespan(&secs, slots),
            lower_s: elastic_lower_bound(&secs, slots),
            measured_s,
        }
    }

    /// Relative drift of the measurement from the LPT bound:
    /// `measured/lpt − 1`. Positive = slower than the model (scheduler
    /// overhead, host noise); strongly negative would mean the model is
    /// mis-calibrated.
    pub fn lpt_drift(&self) -> f64 {
        if self.lpt_s > 0.0 {
            self.measured_s / self.lpt_s - 1.0
        } else {
            0.0
        }
    }

    /// Jobs per minute at the measured makespan.
    pub fn jobs_per_min(&self, jobs: usize) -> f64 {
        if self.measured_s > 0.0 {
            jobs as f64 * 60.0 / self.measured_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_handles_classic_cases() {
        // Graham's tight instance on 3 machines: LPT gives 11 where the
        // optimum is 9 — exactly the 4/3 − 1/(3·m) bound.
        let costs = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0];
        assert_eq!(lpt_makespan(&costs, 3), 11.0);
        // One slot: makespan is the total.
        assert_eq!(lpt_makespan(&costs, 1), costs.iter().sum::<f64>());
        // More slots than jobs: the longest job dominates.
        assert_eq!(lpt_makespan(&costs, 16), 5.0);
    }

    #[test]
    fn lpt_never_beats_the_lower_bound() {
        let costs = [7.0, 3.0, 3.0, 2.0, 1.0];
        for slots in 1..=6 {
            assert!(lpt_makespan(&costs, slots) >= elastic_lower_bound(&costs, slots) - 1e-12);
        }
    }

    #[test]
    fn job_cost_work_is_grind_denominator() {
        let c = JobCost {
            cells: 200,
            steps: 50,
            stages: 3,
        };
        assert_eq!(c.work(), 30_000.0);
        assert!((c.seconds(1e-6) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn drift_and_throughput() {
        let m = EnsembleModel {
            lpt_s: 2.0,
            lower_s: 1.5,
            measured_s: 2.5,
        };
        assert!((m.lpt_drift() - 0.25).abs() < 1e-12);
        assert!((m.jobs_per_min(5) - 120.0).abs() < 1e-9);
    }
}
