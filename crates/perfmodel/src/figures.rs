//! Figure generators: one function per paper artifact.
//!
//! Each returns structured rows (serde-serializable, consumed by
//! EXPERIMENTS.md tooling) plus a `render_*` companion producing the
//! human-readable table the benchmark harness prints.

use serde::{Deserialize, Serialize};

use mfc_acc::KernelClass;
use mfc_mpsim::Staging;

use crate::calib::{achieved_peak_fraction, grind_for};
use crate::hw::{self, DeviceSpec};
use crate::roofline::{effective_ai, RooflinePoint};
use crate::scaling::{MachineModel, ScalingModel, ScalingPoint};
use crate::workload::WorkloadProfile;

/// Figure 1: rooflines of the two hottest kernels on V100 and MI250X.
pub fn fig1_roofline(profile: &WorkloadProfile) -> Vec<RooflinePoint> {
    let mut out = Vec::new();
    for spec in [hw::V100_PCIE, hw::MI250X_GCD, hw::A100_PCIE] {
        for class in [KernelClass::Weno, KernelClass::Riemann] {
            if let Some(frac) = achieved_peak_fraction(spec.name, class) {
                let ai = effective_ai(class, profile.class(class).ai());
                out.push(RooflinePoint::from_peak_fraction(&spec, class, ai, frac));
            }
        }
    }
    out
}

pub fn render_fig1(points: &[RooflinePoint]) -> String {
    let mut s = String::from(
        "Fig 1 — Roofline of the hottest kernels\n\
         device               kernel    AI(F/B)  achieved GF/s  attainable GF/s  %peak  bound\n",
    );
    for p in points {
        let spec = spec_by_name(&p.device);
        s.push_str(&format!(
            "{:<20} {:<9} {:>7.2} {:>14.0} {:>16.0} {:>6.1} {}\n",
            p.device,
            p.kernel.name(),
            p.ai,
            p.achieved_gflops,
            p.attainable_gflops,
            100.0 * p.peak_fraction,
            if p.memory_bound(&spec) {
                "memory"
            } else {
                "compute"
            },
        ));
    }
    s
}

/// One row of the weak/strong scaling figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    pub machine: String,
    pub series: String,
    pub point: ScalingPoint,
}

/// Figure 2: weak scaling on Summit (to 13824 GPUs) and Frontier (to
/// 65536 GCDs), 8M cells per device.
pub fn fig2_weak_scaling() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let summit = ScalingModel::new(MachineModel::summit());
    for p in summit.weak(8.0e6, &[128, 256, 512, 1024, 2048, 4096, 13824]) {
        rows.push(ScalingRow {
            machine: "Summit".into(),
            series: "8M cells/GPU".into(),
            point: p,
        });
    }
    let frontier = ScalingModel::new(MachineModel::frontier(Staging::HostStaged));
    for p in frontier.weak(8.0e6, &[128, 512, 2048, 8192, 32768, 65536]) {
        rows.push(ScalingRow {
            machine: "Frontier".into(),
            series: "8M cells/GCD".into(),
            point: p,
        });
    }
    rows
}

/// Figure 3: strong scaling on Summit (8M cells/GPU base, 8x devices) and
/// Frontier (32M & 16M cells/GCD bases, 16x devices).
pub fn fig3_strong_scaling() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let summit = ScalingModel::new(MachineModel::summit());
    let base_p = 8;
    for p in summit.strong(
        8.0e6 * base_p as f64,
        &[base_p, 2 * base_p, 4 * base_p, 8 * base_p],
    ) {
        rows.push(ScalingRow {
            machine: "Summit".into(),
            series: "8M cells/GPU base".into(),
            point: p,
        });
    }
    let frontier = ScalingModel::new(MachineModel::frontier(Staging::HostStaged));
    for (label, cells) in [
        ("32M cells/GCD base", 32.0e6),
        ("16M cells/GCD base", 16.0e6),
    ] {
        for p in frontier.strong(
            cells * base_p as f64,
            &[base_p, 2 * base_p, 4 * base_p, 8 * base_p, 16 * base_p],
        ) {
            rows.push(ScalingRow {
                machine: "Frontier".into(),
                series: label.into(),
                point: p,
            });
        }
    }
    rows
}

/// Figure 4: Frontier strong scaling with and without GPU-aware MPI.
pub fn fig4_gpu_aware() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let base_p = 8;
    for (label, staging) in [
        ("host-staged MPI", Staging::HostStaged),
        ("GPU-aware MPI", Staging::DeviceDirect),
    ] {
        let model = ScalingModel::new(MachineModel::frontier(staging));
        for p in model.strong(
            32.0e6 * base_p as f64,
            &[base_p, 2 * base_p, 4 * base_p, 8 * base_p, 16 * base_p],
        ) {
            rows.push(ScalingRow {
                machine: "Frontier".into(),
                series: label.into(),
                point: p,
            });
        }
    }
    rows
}

/// Overlap analogs of Figs. 2–4: the same machines and series, each run
/// twice — with the halo exchange exposed (as the paper measured) and
/// hidden behind the interior sweeps (`t = max(t_comm, t_interior) +
/// t_shell`). The gap between paired series is the hidden comm time.
pub fn fig2_weak_scaling_overlap() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for (machine, model, series, counts) in [
        (
            "Summit",
            MachineModel::summit(),
            "8M cells/GPU",
            vec![128usize, 256, 512, 1024, 2048, 4096, 13824],
        ),
        (
            "Frontier",
            MachineModel::frontier(Staging::HostStaged),
            "8M cells/GCD",
            vec![128, 512, 2048, 8192, 32768, 65536],
        ),
    ] {
        for (label, m) in [
            (series.to_string(), ScalingModel::new(model)),
            (
                format!("{series} + overlap"),
                ScalingModel::overlapped(model),
            ),
        ] {
            for p in m.weak(8.0e6, &counts) {
                rows.push(ScalingRow {
                    machine: machine.into(),
                    series: label.clone(),
                    point: p,
                });
            }
        }
    }
    rows
}

/// Fig. 3 analog with overlap on/off (see [`fig2_weak_scaling_overlap`]).
pub fn fig3_strong_scaling_overlap() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let base_p = 8;
    let counts = [base_p, 2 * base_p, 4 * base_p, 8 * base_p, 16 * base_p];
    for (machine, model, series, cells) in [
        ("Summit", MachineModel::summit(), "8M cells/GPU base", 8.0e6),
        (
            "Frontier",
            MachineModel::frontier(Staging::HostStaged),
            "32M cells/GCD base",
            32.0e6,
        ),
        (
            "Frontier",
            MachineModel::frontier(Staging::HostStaged),
            "16M cells/GCD base",
            16.0e6,
        ),
    ] {
        for (label, m) in [
            (series.to_string(), ScalingModel::new(model)),
            (
                format!("{series} + overlap"),
                ScalingModel::overlapped(model),
            ),
        ] {
            for p in m.strong(cells * base_p as f64, &counts) {
                rows.push(ScalingRow {
                    machine: machine.into(),
                    series: label.clone(),
                    point: p,
                });
            }
        }
    }
    rows
}

/// Fig. 4 analog with overlap on/off: the overlap narrows the GPU-aware
/// vs host-staged gap, since the staged copies hide behind compute too.
pub fn fig4_gpu_aware_overlap() -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let base_p = 8;
    let counts = [base_p, 2 * base_p, 4 * base_p, 8 * base_p, 16 * base_p];
    for (series, staging) in [
        ("host-staged MPI", Staging::HostStaged),
        ("GPU-aware MPI", Staging::DeviceDirect),
    ] {
        for (label, m) in [
            (
                series.to_string(),
                ScalingModel::new(MachineModel::frontier(staging)),
            ),
            (
                format!("{series} + overlap"),
                ScalingModel::overlapped(MachineModel::frontier(staging)),
            ),
        ] {
            for p in m.strong(32.0e6 * base_p as f64, &counts) {
                rows.push(ScalingRow {
                    machine: "Frontier".into(),
                    series: label.clone(),
                    point: p,
                });
            }
        }
    }
    rows
}

pub fn render_scaling(title: &str, rows: &[ScalingRow]) -> String {
    let mut s = format!(
        "{title}\nmachine    series                devices  cells/dev  t/step(s)  norm.time  efficiency\n"
    );
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:<21} {:>7} {:>10.2e} {:>10.4} {:>10.3} {:>10.3}\n",
            r.machine,
            r.series,
            r.point.devices,
            r.point.cells_per_device,
            r.point.step_time_s,
            r.point.normalized_time,
            r.point.efficiency,
        ));
    }
    s
}

/// One speedup entry of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupRow {
    pub gpu: String,
    pub cpu: String,
    pub gpu_grind_ns: f64,
    pub cpu_grind_ns: f64,
    pub speedup: f64,
}

/// Figure 5: grind-time speedup of every GPU over every CPU.
pub fn fig5_speedup() -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for cpu in hw::CPUS {
        let ct = grind_for(cpu.name).unwrap().total();
        for gpu in hw::GPUS {
            let gt = grind_for(gpu.name).unwrap().total();
            rows.push(SpeedupRow {
                gpu: gpu.name.into(),
                cpu: cpu.name.into(),
                gpu_grind_ns: gt,
                cpu_grind_ns: ct,
                speedup: ct / gt,
            });
        }
    }
    rows
}

pub fn render_fig5(rows: &[SpeedupRow]) -> String {
    let mut s = String::from(
        "Fig 5 — GPU speedup over CPU sockets (grind time ns/cell/PDE/RHS)\n\
         cpu                    gpu               cpu ns   gpu ns  speedup\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<22} {:<16} {:>7.2} {:>8.2} {:>8.2}\n",
            r.cpu, r.gpu, r.cpu_grind_ns, r.gpu_grind_ns, r.speedup
        ));
    }
    s
}

/// One device column of Figs. 6–7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    pub device: String,
    pub total_grind_ns: f64,
    /// (class name, ns, share of total).
    pub components: Vec<(String, f64, f64)>,
}

/// Figures 6 and 7: per-kernel grind-time breakdown on the five GPUs
/// (Fig. 6 is the share view, Fig. 7 the absolute view; both come from
/// the same rows).
pub fn fig6_fig7_breakdown() -> Vec<BreakdownRow> {
    hw::GPUS
        .iter()
        .map(|d| {
            let g = grind_for(d.name).unwrap();
            BreakdownRow {
                device: d.name.into(),
                total_grind_ns: g.total(),
                components: g
                    .shares()
                    .iter()
                    .map(|(c, share)| (c.name().to_string(), g.class(*c), *share))
                    .collect(),
            }
        })
        .collect()
}

pub fn render_fig6_fig7(rows: &[BreakdownRow]) -> String {
    let mut s = String::from(
        "Figs 6/7 — grind-time breakdown (ns/cell/PDE/RHS and % of total)\n\
         device            total     WENO        Riemann     Pack        Other\n",
    );
    for r in rows {
        s.push_str(&format!("{:<17} {:>6.2}  ", r.device, r.total_grind_ns));
        for (_, ns, share) in &r.components {
            s.push_str(&format!("{:>5.2} ({:>4.1}%) ", ns, share * 100.0));
        }
        s.push('\n');
    }
    s
}

fn spec_by_name(name: &str) -> DeviceSpec {
    hw::GPUS
        .iter()
        .chain(hw::CPUS.iter())
        .find(|d| d.name == name)
        .copied()
        .unwrap_or(hw::A100_PCIE)
}

/// Serialize any figure's rows to a JSON record for EXPERIMENTS.md.
pub fn to_json<T: Serialize>(figure: &str, rows: &T) -> String {
    serde_json::json!({ "figure": figure, "rows": rows }).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::measure(12, 1)
    }

    #[test]
    fn fig1_reproduces_boundness_claims() {
        let pts = fig1_roofline(&profile());
        let find = |dev: &str, k: KernelClass| {
            pts.iter()
                .find(|p| p.device == dev && p.kernel == k)
                .unwrap()
        };
        // V100: Riemann memory-bound, WENO compute-bound.
        assert!(find("NV V100 PCIe", KernelClass::Riemann).memory_bound(&hw::V100_PCIE));
        assert!(!find("NV V100 PCIe", KernelClass::Weno).memory_bound(&hw::V100_PCIE));
        // MI250X: both memory-bound.
        assert!(find("AMD MI250X GCD", KernelClass::Weno).memory_bound(&hw::MI250X_GCD));
        assert!(find("AMD MI250X GCD", KernelClass::Riemann).memory_bound(&hw::MI250X_GCD));
        // Peak fractions as reported.
        assert!((find("NV V100 PCIe", KernelClass::Weno).peak_fraction - 0.45).abs() < 1e-12);
        assert!((find("AMD MI250X GCD", KernelClass::Riemann).peak_fraction - 0.03).abs() < 1e-12);
    }

    #[test]
    fn fig2_efficiencies_match_abstract() {
        let rows = fig2_weak_scaling();
        let last = |machine: &str| {
            rows.iter()
                .rfind(|r| r.machine == machine)
                .unwrap()
                .point
                .efficiency
        };
        assert!((last("Summit") - 0.97).abs() < 0.015);
        assert!((last("Frontier") - 0.95).abs() < 0.015);
    }

    #[test]
    fn fig3_final_efficiencies() {
        let rows = fig3_strong_scaling();
        let last = |series: &str| {
            rows.iter()
                .rfind(|r| r.series == series)
                .unwrap()
                .point
                .efficiency
        };
        assert!((last("8M cells/GPU base") - 0.84).abs() < 0.02);
        assert!((last("32M cells/GCD base") - 0.81).abs() < 0.025);
        assert!(last("16M cells/GCD base") < last("32M cells/GCD base"));
    }

    #[test]
    fn fig4_gpu_aware_wins() {
        let rows = fig4_gpu_aware();
        let last = |series: &str| {
            rows.iter()
                .rfind(|r| r.series == series)
                .unwrap()
                .point
                .efficiency
        };
        let aware = last("GPU-aware MPI");
        let staged = last("host-staged MPI");
        assert!((aware - 0.92).abs() < 0.025, "aware = {aware}");
        assert!((staged - 0.81).abs() < 0.025, "staged = {staged}");
    }

    #[test]
    fn overlap_figures_pair_every_series_and_never_slow_a_point() {
        // Efficiency is a *ratio* to the base point, so hiding the exchange
        // can shift it either way (the collective term weighs more once the
        // rest shrinks); the invariant is on absolute step time.
        for rows in [
            fig2_weak_scaling_overlap(),
            fig3_strong_scaling_overlap(),
            fig4_gpu_aware_overlap(),
        ] {
            for r in rows.iter().filter(|r| !r.series.ends_with("+ overlap")) {
                let paired = rows
                    .iter()
                    .find(|o| {
                        o.machine == r.machine
                            && o.series == format!("{} + overlap", r.series)
                            && o.point.devices == r.point.devices
                    })
                    .unwrap_or_else(|| panic!("no overlap twin for {}", r.series));
                assert!(
                    paired.point.step_time_s <= r.point.step_time_s + 1e-15,
                    "overlap slowed {} @ {} devices",
                    r.series,
                    r.point.devices
                );
            }
        }
    }

    #[test]
    fn overlap_recovers_strong_scaling_at_the_thin_end() {
        // At 16x strong scaling the per-device blocks are thin and the
        // exchange is a visible fraction of the step; hiding it behind the
        // interior sweeps must claw back measurable efficiency.
        let rows = fig3_strong_scaling_overlap();
        let last = |series: &str| {
            rows.iter()
                .rfind(|r| r.series == series)
                .unwrap()
                .point
                .efficiency
        };
        let plain = last("32M cells/GCD base");
        let over = last("32M cells/GCD base + overlap");
        assert!(over > plain + 0.005, "plain = {plain}, overlapped = {over}");
    }

    #[test]
    fn fig5_every_gpu_beats_every_cpu() {
        let rows = fig5_speedup();
        assert_eq!(rows.len(), 20);
        for r in &rows {
            assert!(r.speedup > 1.0, "{} vs {}: {}", r.gpu, r.cpu, r.speedup);
        }
    }

    #[test]
    fn fig6_packing_ratios() {
        let rows = fig6_fig7_breakdown();
        let pack = |dev: &str| {
            rows.iter()
                .find(|r| r.device == dev)
                .unwrap()
                .components
                .iter()
                .find(|(n, _, _)| n == "Pack")
                .unwrap()
                .1
        };
        assert!((pack("NV V100 PCIe") / pack("NV A100 PCIe") - 3.71).abs() < 0.05);
        assert!((pack("AMD MI250X GCD") / pack("NV A100 PCIe") - 2.62).abs() < 0.05);
    }

    #[test]
    fn renders_are_nonempty_and_json_parses() {
        let p = profile();
        assert!(render_fig1(&fig1_roofline(&p)).contains("Riemann"));
        assert!(render_scaling("Fig 2", &fig2_weak_scaling()).contains("Summit"));
        assert!(render_fig5(&fig5_speedup()).contains("Power10"));
        assert!(render_fig6_fig7(&fig6_fig7_breakdown()).contains("MI250X"));
        let j = to_json("fig5", &fig5_speedup());
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["figure"], "fig5");
    }
}
