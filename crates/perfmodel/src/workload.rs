//! Workload characterization: run the real solver, read the real ledger.
//!
//! This is the substitute for profiling MFC with `nsight-compute` /
//! `rocprof`: the Rust solver's instrumented kernels accumulate per-class
//! FLOPs, bytes, and iteration counts while simulating the representative
//! two-phase problem, and the per-cell-per-RHS intensities extracted here
//! feed the roofline and scaling figures.

use std::collections::HashMap;

use mfc_acc::{Context, KernelClass};
use mfc_core::case::presets;
use mfc_core::solver::{DtMode, Solver, SolverConfig};

use serde::{Deserialize, Serialize};

/// Per-class workload intensity of one RHS evaluation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClassIntensity {
    /// FLOPs per interior cell per RHS evaluation.
    pub flops_per_cell: f64,
    /// DRAM bytes per interior cell per RHS evaluation (ledger counts, no
    /// cache-reuse correction).
    pub bytes_per_cell: f64,
    /// Kernel iterations (device threads) per cell per RHS evaluation.
    pub items_per_cell: f64,
}

impl ClassIntensity {
    pub fn ai(&self) -> f64 {
        self.flops_per_cell / self.bytes_per_cell.max(1e-300)
    }
}

/// Measured workload profile of the representative two-phase problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Cells used for the measurement.
    pub cells: usize,
    /// Equations (PDEs).
    pub neq: usize,
    /// RHS evaluations profiled.
    pub rhs_evals: u64,
    /// Per-class intensities.
    pub classes: HashMap<KernelClass, ClassIntensity>,
}

impl WorkloadProfile {
    /// Profile an `n^3`-ish 3-D two-phase problem over `steps` RK3 steps.
    ///
    /// `n` per axis; keep it modest (16–32) — the intensities are
    /// per-cell and resolution-independent to within ghost-layer edge
    /// effects.
    pub fn measure(n: usize, steps: usize) -> Self {
        let case = presets::two_phase_benchmark(3, [n, n, n]);
        let cfg = SolverConfig {
            dt: DtMode::Fixed(1e-9), // timing-irrelevant; counts only
            ..Default::default()
        };
        let mut solver = Solver::new(&case, cfg, Context::serial());
        solver.context().ledger().reset();
        solver
            .run_steps(steps)
            .expect("perf-model workload run hit a numerical fault");

        let rhs_evals = solver.steps() * 3; // RK3
        let cells = solver.domain().interior_cells();
        let denom = cells as f64 * rhs_evals as f64;
        let mut classes = HashMap::new();
        for (class, stats) in solver.context().ledger().by_class() {
            classes.insert(
                class,
                ClassIntensity {
                    flops_per_cell: stats.flops / denom,
                    bytes_per_cell: (stats.bytes_read + stats.bytes_written) / denom,
                    items_per_cell: stats.items as f64 / denom,
                },
            );
        }
        WorkloadProfile {
            cells,
            neq: solver.domain().eq.neq(),
            rhs_evals,
            classes,
        }
    }

    pub fn class(&self, c: KernelClass) -> ClassIntensity {
        self.classes.get(&c).copied().unwrap_or_default()
    }

    /// Total FLOPs per cell per RHS across all classes.
    pub fn total_flops_per_cell(&self) -> f64 {
        self.classes.values().map(|c| c.flops_per_cell).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_contains_the_hot_classes() {
        let p = WorkloadProfile::measure(12, 1);
        for class in [
            KernelClass::Weno,
            KernelClass::Riemann,
            KernelClass::Pack,
            KernelClass::Update,
        ] {
            assert!(p.classes.contains_key(&class), "missing {class:?}");
        }
        assert!(p.total_flops_per_cell() > 100.0);
    }

    #[test]
    fn weno_and_riemann_dominate_flops() {
        // §IV-A: the two kernels account for the majority of compute.
        let p = WorkloadProfile::measure(12, 1);
        let hot = p.class(KernelClass::Weno).flops_per_cell
            + p.class(KernelClass::Riemann).flops_per_cell;
        assert!(hot / p.total_flops_per_cell() > 0.5);
    }

    #[test]
    fn intensities_are_resolution_stable() {
        // Per-cell intensities include ghost-layer overcompute that decays
        // like (1 + 2*ng/n)^2, so moderately close resolutions must agree.
        let a = WorkloadProfile::measure(16, 1);
        let b = WorkloadProfile::measure(20, 1);
        let fa = a.class(KernelClass::Weno).flops_per_cell;
        let fb = b.class(KernelClass::Weno).flops_per_cell;
        assert!((fa / fb - 1.0).abs() < 0.35, "fa={fa} fb={fb}");
    }

    #[test]
    fn pack_has_negligible_flops_but_real_traffic() {
        let p = WorkloadProfile::measure(12, 1);
        let pack = p.class(KernelClass::Pack);
        assert!(pack.flops_per_cell < 1.0);
        assert!(pack.bytes_per_cell > 8.0);
    }
}
