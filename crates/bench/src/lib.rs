//! Shared helpers for the benchmark suite.
//!
//! Each Criterion bench regenerates one paper artifact or optimization
//! claim; the mapping is in DESIGN.md's per-experiment index.  Absolute
//! numbers are host-CPU numbers — the *ratios* between variants are what
//! reproduce the paper's claims (flat beats AoS, coalesced beats strided,
//! inlined beats indirect, tiled/GEAM beats naive, stack-private beats
//! heap-private).

use mfc_layout::{Dims3, Dims4, Flat4D, ScalarFieldSet};

/// A smooth, non-trivial field for kernel inputs.
pub fn smooth(i: usize, j: usize, k: usize, f: usize) -> f64 {
    let s = 0.013 * i as f64 + 0.007 * j as f64 + 0.011 * k as f64 + 0.5 * f as f64;
    1.0 + 0.3 * s.sin()
}

/// An x-coalesced packed buffer of `nf` fields on an `n1 x n2 x n3` block.
pub fn packed_buffer(n1: usize, n2: usize, n3: usize, nf: usize) -> Flat4D {
    Flat4D::from_fn(Dims4::new(n1, n2, n3, nf), smooth)
}

/// The scalar-field (array-of-allocations) layout with the same contents.
pub fn scalar_fields(n1: usize, n2: usize, n3: usize, nf: usize) -> ScalarFieldSet {
    ScalarFieldSet::from_fn(Dims3::new(n1, n2, n3), nf, |f, i, j, k| smooth(i, j, k, f))
}

/// Benchmark sizing: a ~1M-point workload mirroring the paper's
/// "representative two-phase problem with one million grid cells".
pub const BENCH_N: usize = 100;
pub const BENCH_NF: usize = 7;
