//! Figure-regeneration harness: prints every table/figure of the paper's
//! evaluation and writes machine-readable JSON next to them.
//!
//! Usage: `cargo run --release -p mfc-bench --bin figures [fig1|fig2|...|all] [--json DIR]`

use std::path::PathBuf;

use mfc_perfmodel::figures::*;
use mfc_perfmodel::packmodel::{pack_model_report, render_pack_model};
use mfc_perfmodel::projection::{projection_report, render_projection};
use mfc_perfmodel::WorkloadProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let json_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if let Some(d) = &json_dir {
        std::fs::create_dir_all(d).expect("create json output dir");
    }
    let dump = |name: &str, json: String| {
        if let Some(d) = &json_dir {
            std::fs::write(d.join(format!("{name}.json")), json).expect("write json");
        }
    };

    let all = which == "all";
    if all || which == "fig1" {
        let profile = WorkloadProfile::measure(20, 2);
        let rows = fig1_roofline(&profile);
        print!("{}", render_fig1(&rows));
        println!();
        dump("fig1", to_json("fig1", &rows));
    }
    if all || which == "fig2" {
        let rows = fig2_weak_scaling();
        print!(
            "{}",
            render_scaling("Fig 2 — weak scaling (Summit & Frontier)", &rows)
        );
        println!();
        dump("fig2", to_json("fig2", &rows));
    }
    if all || which == "fig3" {
        let rows = fig3_strong_scaling();
        print!(
            "{}",
            render_scaling("Fig 3 — strong scaling (Summit & Frontier)", &rows)
        );
        println!();
        dump("fig3", to_json("fig3", &rows));
    }
    if all || which == "fig4" {
        let rows = fig4_gpu_aware();
        print!(
            "{}",
            render_scaling(
                "Fig 4 — Frontier strong scaling, GPU-aware vs host-staged MPI",
                &rows
            )
        );
        println!();
        dump("fig4", to_json("fig4", &rows));
    }
    if all || which == "fig2o" || which == "overlap" {
        let rows = fig2_weak_scaling_overlap();
        print!(
            "{}",
            render_scaling("Fig 2 analog — weak scaling, overlap on/off", &rows)
        );
        println!();
        dump("fig2_overlap", to_json("fig2_overlap", &rows));
    }
    if all || which == "fig3o" || which == "overlap" {
        let rows = fig3_strong_scaling_overlap();
        print!(
            "{}",
            render_scaling("Fig 3 analog — strong scaling, overlap on/off", &rows)
        );
        println!();
        dump("fig3_overlap", to_json("fig3_overlap", &rows));
    }
    if all || which == "fig4o" || which == "overlap" {
        let rows = fig4_gpu_aware_overlap();
        print!(
            "{}",
            render_scaling(
                "Fig 4 analog — GPU-aware vs host-staged MPI, overlap on/off",
                &rows
            )
        );
        println!();
        dump("fig4_overlap", to_json("fig4_overlap", &rows));
    }
    if all || which == "fig5" {
        let rows = fig5_speedup();
        print!("{}", render_fig5(&rows));
        println!();
        dump("fig5", to_json("fig5", &rows));
    }
    if all || which == "fig6" || which == "fig7" {
        let rows = fig6_fig7_breakdown();
        print!("{}", render_fig6_fig7(&rows));
        println!();
        dump("fig6_fig7", to_json("fig6_fig7", &rows));
    }
    if all || which == "packmodel" {
        let rows = pack_model_report();
        print!("{}", render_pack_model(&rows));
        println!();
        dump("packmodel", to_json("packmodel", &rows));
    }
    if all || which == "projection" {
        let rows = projection_report();
        print!("{}", render_projection(&rows));
        println!();
        dump("projection", to_json("projection", &rows));
    }
}
