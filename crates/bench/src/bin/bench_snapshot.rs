//! Perf-trajectory snapshot: staged vs fused grind time on a small fixed
//! case, plus the modeled-vs-measured sweep traffic ratio.
//!
//! Usage:
//!   `cargo run --release -p mfc-bench --bin bench_snapshot -- [--check] [PATH]`
//!
//! Without `--check`, measures and writes the snapshot JSON to `PATH`
//! (default `BENCH_grind.json` at the repo root) — commit the result as the
//! next point on the perf trajectory. With `--check`, measures, compares
//! against the committed snapshot at `PATH`, and exits non-zero if
//!
//!   * fused grind is < 1.3x faster than staged on the 3-D benchmark case,
//!   * the ledger-measured staged/fused traffic ratio drifts more than 25%
//!     from the `fusionmodel` prediction,
//!   * fused grind regresses by more than 20% against the committed
//!     baseline, or
//!   * tracing costs more than 2%: traced and untraced fused solvers
//!     alternate *single steps*, and the ratio of their accumulated
//!     thread-CPU times must stay under 1.02. Adjacent steps share the
//!     same ~40 ms of host load, so the ratio holds a 2% bar that
//!     absolute clocks on a shared box cannot. The untraced arm is the
//!     shipped default — the tracing-*disabled* fast path, whose only
//!     cost over uninstrumented code is a handful of `Option` checks;
//!     gating the full enabled-vs-disabled ratio at 2% keeps both modes
//!     honest against BENCH_grind.json.
//!
//! Timings are best-of-`REPS` over `STEPS`-step runs to shave scheduler
//! noise; run under `--release` or the numbers are meaningless.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mfc_acc::Context;
use mfc_core::case::presets;
use mfc_core::par::{run_distributed_with_mode, ExchangeMode};
use mfc_core::rhs::RhsMode;
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_mpsim::Staging;
use mfc_perfmodel::{fusionmodel, EnsembleModel, JobCost};
use mfc_sched::{JobSpec, JobState, SchedConfig, Scheduler};
use mfc_trace::Tracer;

const N: usize = 24;
const WARMUP_STEPS: usize = 3;
const STEPS: usize = 12;
const REPS: usize = 5;

const MIN_FUSED_SPEEDUP: f64 = 1.3;
const MAX_MODEL_DRIFT: f64 = 0.25;
const MAX_GRIND_REGRESSION: f64 = 0.20;
/// Ceiling on the paired traced/untraced grind ratio. Measured A/B
/// interleaved so host load cancels; a 2% bar on an absolute clock would
/// be pure jitter on a shared machine.
const MAX_TRACE_OVERHEAD: f64 = 0.02;
/// Ranks for the overlapped-exchange ablation axis.
const OVERLAP_RANKS: usize = 2;
/// Worker count of the thread-scaling axis.
const THREAD_WORKERS: usize = 4;
/// Floor on the 4-worker fused speedup over 1 worker. Enforced only when
/// the host actually has `THREAD_WORKERS` hardware threads (CI runners
/// do); an oversubscribed box still measures and records the axis, since
/// bitwise identity is what the tests gate there.
const MIN_THREAD_SPEEDUP_W4: f64 = 2.0;
/// Ceiling on the overlapped/sendrecv grind ratio. The rank simulator is
/// single-threaded, so the overlapped path cannot *win* wall time here —
/// this axis pins down its bookkeeping cost (queue plumbing, region
/// sweeps, slab staging) so the mode stays cheap enough that real
/// machines keep the full hidden-comm benefit. The bar is generous
/// because the 24^3 bench blocks are pathologically small: a 2-rank
/// split leaves a 6x18x18 interior (28% of cells), so most of the work
/// runs in thin boundary shells whose short pencils amortize per-region
/// setup poorly. Production-sized blocks (Sec. III-B runs 8M+ cells/GPU)
/// are >97% interior, where the region path is the plain path.
const MAX_OVERLAP_OVERHEAD: f64 = 0.25;
/// Floor on the W=4-lane fused speedup over W=1, enforced only where the
/// roofline-bounded vector-efficiency model predicts at least that much
/// headroom on this host (it does not on a scalar-tail-dominated tiling
/// or a bandwidth-bound kernel mix).
const MIN_VECTOR_SPEEDUP: f64 = 1.15;
/// Ensemble-throughput axis: a fixed 6-job mixed-length manifest run
/// through `mfc-sched` on this worker budget.
const ENSEMBLE_BUDGET: usize = 2;
const ENSEMBLE_CELLS: usize = 2048;
const ENSEMBLE_STEPS: [u64; 6] = [90, 75, 60, 45, 30, 15];
/// Envelope on `measured / LPT − 1`. The greedy LPT bound assumes rigid
/// one-worker jobs on `min(budget, host_cores)` slots; the elastic
/// scheduler should land near it (beating it slightly where elastic
/// shares absorb the tail, trailing it by thread/checkpoint overhead on
/// millisecond-scale jobs), so the envelope is generous but bounded.
const MAX_ENSEMBLE_LPT_DRIFT: f64 = 0.5;
/// Ceiling on ensemble makespan regression vs. the committed baseline
/// (wall-clock of a multi-threaded scheduler on a shared box — noisier
/// than the single-thread grind axis, hence the wider bar).
const MAX_ENSEMBLE_REGRESSION: f64 = 0.35;

/// Nanoseconds this thread has actually run on a CPU, from
/// `/proc/thread-self/schedstat`. Unlike a wall clock this excludes
/// run-queue waits caused by other host load. `None` off Linux.
fn thread_cpu_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

fn solver_for(
    mode: RhsMode,
    workers: usize,
    vector_width: usize,
    tracer: Option<&Arc<Tracer>>,
) -> Solver {
    let case = presets::two_phase_benchmark(3, [N, N, N]);
    let mut cfg = SolverConfig {
        dt: DtMode::Cfl(0.4),
        workers,
        vector_width,
        ..Default::default()
    };
    cfg.rhs.mode = mode;
    let mut ctx = Context::with_workers(workers).with_vector_width(vector_width);
    if let Some(tr) = tracer {
        ctx.set_tracer(tr.handle(0));
    }
    Solver::new(&case, cfg, ctx)
}

/// Best-of-reps grind time in µs per cell per step (wall and thread-CPU
/// clocks), the sweep bytes the ledger recorded for one measured run, and
/// the sweep arithmetic intensity plus lane-tiling stats of the last run.
/// The CPU figure is -1 where schedstat is unavailable.
fn measure(mode: RhsMode, workers: usize, vector_width: usize) -> Measurement {
    let cells = (N * N * N) as f64;
    let mut best = f64::INFINITY;
    let mut best_cpu = f64::INFINITY;
    let mut bytes = 0.0;
    let mut ai = 0.0;
    let mut lanes = (0, 0);
    for _ in 0..REPS {
        let mut solver = solver_for(mode, workers, vector_width, None);
        solver.run_steps(WARMUP_STEPS).unwrap();
        let before = fusionmodel::measured_sweep_bytes(
            &solver.context().ledger().kernel_stats(),
            mode == RhsMode::Fused,
        );
        let c0 = thread_cpu_ns();
        let t0 = Instant::now();
        solver.run_steps(STEPS).unwrap();
        let us = t0.elapsed().as_secs_f64() * 1e6 / (cells * STEPS as f64);
        if let (Some(c0), Some(c1)) = (c0, thread_cpu_ns()) {
            best_cpu = best_cpu.min((c1 - c0) as f64 * 1e-3 / (cells * STEPS as f64));
        }
        if us < best {
            best = us;
            let stats = solver.context().ledger().kernel_stats();
            bytes = fusionmodel::measured_sweep_bytes(&stats, mode == RhsMode::Fused) - before;
            let (flops, traffic) = stats.iter().fold((0.0, 0.0), |(f, b), k| {
                (f + k.flops, b + k.bytes_read + k.bytes_written)
            });
            ai = if traffic > 0.0 { flops / traffic } else { 0.0 };
            lanes = solver.context().lane_stats();
        }
    }
    if !best_cpu.is_finite() {
        best_cpu = -1.0;
    }
    Measurement {
        us: best,
        cpu_us: best_cpu,
        sweep_bytes: bytes,
        ai,
        lanes,
    }
}

struct Measurement {
    us: f64,
    cpu_us: f64,
    sweep_bytes: f64,
    /// Ledger arithmetic intensity (FLOP per declared byte) over all
    /// kernels of the measured run.
    ai: f64,
    /// `(full_packets, tail_elems)` lane tiling of the measured run.
    lanes: (u64, u64),
}

/// One step of `solver`, returning its thread-CPU cost in ns (wall ns
/// where schedstat is unavailable).
fn timed_step(solver: &mut Solver) -> f64 {
    let c0 = thread_cpu_ns();
    let t0 = Instant::now();
    solver.step().unwrap();
    match (c0, thread_cpu_ns()) {
        (Some(c0), Some(c1)) => (c1 - c0) as f64,
        _ => t0.elapsed().as_nanos() as f64,
    }
}

/// Paired tracing overhead: an untraced and a traced fused solver
/// alternate single steps, and the accumulated per-arm CPU times are
/// ratioed. Adjacent steps see the same ~tens-of-ms of host load, so the
/// ratio holds a 2% gate that absolute times (or even coarser A/B
/// blocks) cannot. Returns (overhead fraction, traced µs/cell/step).
fn measure_trace_overhead() -> (f64, f64) {
    let cells = (N * N * N) as f64;
    let mut plain = solver_for(RhsMode::Fused, 1, mfc_acc::DEFAULT_WIDTH, None);
    let tracer = Arc::new(Tracer::new());
    let mut traced = solver_for(RhsMode::Fused, 1, mfc_acc::DEFAULT_WIDTH, Some(&tracer));
    plain.run_steps(WARMUP_STEPS).unwrap();
    traced.run_steps(WARMUP_STEPS).unwrap();
    let steps = REPS * STEPS;
    let (mut plain_ns, mut traced_ns) = (0.0, 0.0);
    for _ in 0..steps {
        plain_ns += timed_step(&mut plain);
        traced_ns += timed_step(&mut traced);
    }
    (
        traced_ns / plain_ns - 1.0,
        traced_ns * 1e-3 / (cells * steps as f64),
    )
}

/// `ablation_overlap` axis: the same 2-rank distributed solve with the
/// halo exchange sent plainly vs overlapped with the interior sweeps,
/// A/B-interleaved best-of-reps. Returns (sendrecv, overlapped)
/// µs/cell/step.
fn measure_overlap_ablation() -> (f64, f64) {
    let cells = (N * N * N) as f64;
    let case = presets::two_phase_benchmark(3, [N, N, N]);
    let cfg = SolverConfig {
        dt: DtMode::Cfl(0.4),
        ..Default::default()
    };
    let mut best = [f64::INFINITY; 2];
    for _ in 0..REPS {
        for (i, mode) in [ExchangeMode::Sendrecv, ExchangeMode::Overlapped]
            .into_iter()
            .enumerate()
        {
            let t0 = Instant::now();
            run_distributed_with_mode(
                &case,
                cfg,
                OVERLAP_RANKS,
                STEPS,
                Staging::DeviceDirect,
                mode,
            )
            .expect("ablation run");
            best[i] = best[i].min(t0.elapsed().as_secs_f64() * 1e6 / (cells * STEPS as f64));
        }
    }
    (best[0], best[1])
}

/// A Sod-style 1-D case for the ensemble axis, `steps` long. Cheap per
/// job, long enough that stepping (not solver construction) dominates.
fn ensemble_case_json(name: &str, steps: u64) -> String {
    format!(
        r#"{{
  "name": "{name}",
  "fluids": [{{ "gamma": 1.4, "pi_inf": 0.0 }}],
  "ndim": 1,
  "cells": [{ENSEMBLE_CELLS}, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    {{ "region": "all",
       "state": {{ "alpha": [1.0], "rho": [0.125], "vel": [0.0, 0.0, 0.0], "p": 0.1 }} }},
    {{ "region": {{ "half_space": {{ "axis": 0, "bound": 0.5 }} }},
       "state": {{ "alpha": [1.0], "rho": [1.0], "vel": [0.0, 0.0, 0.0], "p": 1.0 }} }}
  ],
  "numerics": {{ "order": "weno5", "solver": "hllc", "pack": "tiled", "scheme": "rk3", "cfl": 0.5, "dt": null }},
  "run": {{ "steps": {steps}, "ranks": 1 }},
  "output": {{ "dir": "out/bench_ensemble", "vtk": false }}
}}
"#
    )
}

struct EnsembleAxis {
    slots: usize,
    makespan_ms: f64,
    jobs_per_min: f64,
    lpt_ms: f64,
    lower_ms: f64,
    drift: f64,
    serial_ns_per_cell_stage: f64,
}

/// Ensemble-throughput axis: run the fixed 6-job manifest through the
/// `mfc-sched` elastic scheduler on `ENSEMBLE_BUDGET` workers, and
/// compare the measured makespan against the greedy-LPT model fed a
/// measured serial rate. Checkpoints are disabled — this axis times the
/// scheduler, not the filesystem.
fn measure_ensemble(host_cores: usize) -> EnsembleAxis {
    const STAGES: u32 = 3; // rk3 in the generated cases
    const RATE_STEPS: usize = 30;
    let dir = std::env::temp_dir().join(format!("mfc_bench_ensemble_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("ensemble temp dir");
    let mut paths = Vec::new();
    for (i, &steps) in ENSEMBLE_STEPS.iter().enumerate() {
        let p = dir.join(format!("job{i}.json"));
        std::fs::write(&p, ensemble_case_json(&format!("ens{i}"), steps))
            .expect("write ensemble case");
        paths.push(p);
    }

    // Serial rate for the model (seconds per cell·stage), best-of-3 on
    // the same case the jobs run.
    let cf = mfc_cli::CaseFile::from_path(&paths[0]).expect("ensemble case");
    let case = cf.to_case().expect("ensemble case build");
    let cfg = cf.numerics.to_solver_config().expect("ensemble config");
    let mut rate = f64::INFINITY;
    for _ in 0..3 {
        let ctx = Context::with_workers(1).with_vector_width(cfg.vector_width);
        let mut solver = Solver::new(&case, cfg, ctx);
        solver.run_steps(WARMUP_STEPS).expect("ensemble warmup");
        let t0 = Instant::now();
        solver.run_steps(RATE_STEPS).expect("ensemble rate run");
        rate = rate.min(
            t0.elapsed().as_secs_f64()
                / (ENSEMBLE_CELLS as f64 * RATE_STEPS as f64 * STAGES as f64),
        );
    }

    let mut sched = Scheduler::new(SchedConfig {
        budget: ENSEMBLE_BUDGET,
        queue_cap: ENSEMBLE_STEPS.len(),
        aging_rounds: 4,
        out_dir: dir.join("serve"),
        write_checkpoints: false,
    });
    for (i, p) in paths.iter().enumerate() {
        let mut spec = JobSpec::new(p);
        spec.name = Some(format!("ens{i}"));
        spec.priority = (i % 3) as i64;
        sched.submit(spec).expect("ensemble admission");
    }
    let t0 = Instant::now();
    let records = sched.run();
    let makespan_s = t0.elapsed().as_secs_f64();
    let done = records.iter().filter(|r| r.state == JobState::Done).count();
    assert_eq!(
        done,
        ENSEMBLE_STEPS.len(),
        "ensemble jobs did not all finish: {records:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let costs: Vec<JobCost> = ENSEMBLE_STEPS
        .iter()
        .map(|&s| JobCost {
            cells: ENSEMBLE_CELLS,
            steps: s,
            stages: STAGES,
        })
        .collect();
    let slots = ENSEMBLE_BUDGET.min(host_cores).max(1);
    let model = EnsembleModel::from_costs(&costs, rate, slots, makespan_s);
    EnsembleAxis {
        slots,
        makespan_ms: makespan_s * 1e3,
        jobs_per_min: model.jobs_per_min(ENSEMBLE_STEPS.len()),
        lpt_ms: model.lpt_s * 1e3,
        lower_ms: model.lower_s * 1e3,
        drift: model.lpt_drift(),
        serial_ns_per_cell_stage: rate * 1e9,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_grind.json")
        });

    let vw = mfc_acc::DEFAULT_WIDTH;
    let staged = measure(RhsMode::Staged, 1, vw);
    let fused = measure(RhsMode::Fused, 1, vw);
    let (staged_us, staged_cpu_us) = (staged.us, staged.cpu_us);
    let (fused_us, fused_cpu_us) = (fused.us, fused.cpu_us);

    // Vector axis: the same serial fused solve with lane packets disabled.
    let fused_w1 = measure(RhsMode::Fused, 1, 1);
    let vector_speedup = fused_w1.us / fused_us;
    let hw_width = mfc_acc::hw_lane_width();
    let eff = mfc_perfmodel::VectorEfficiency::new(vw, fused.lanes);
    let roofline_cap =
        mfc_perfmodel::vector_roofline_cap(&mfc_perfmodel::CONTAINER_HOST_CORE, hw_width, fused.ai);
    let predicted_vector = mfc_perfmodel::predicted_vector_speedup(
        eff.effective_width(),
        hw_width,
        mfc_perfmodel::HOST_SIMD_ISSUE_EFFICIENCY,
        roofline_cap,
    );

    // Thread axis: few-core hosts (containerized CI) cannot measure a
    // meaningful 4-worker speedup, so the field is recorded as null with
    // the reason instead of committing a misleading <1 ratio.
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (fused_w4_us, thread_speedup, threads_skipped_reason) = if host_threads >= THREAD_WORKERS {
        let w4 = measure(RhsMode::Fused, THREAD_WORKERS, vw);
        (Some(w4.us), Some(fused_us / w4.us), None)
    } else {
        (
            None,
            None,
            Some(format!(
                "host has {host_threads} hardware thread(s); the {THREAD_WORKERS}-worker \
                 axis needs {THREAD_WORKERS}"
            )),
        )
    };
    let (trace_overhead, traced_fused_us) = measure_trace_overhead();
    let (sendrecv_us, overlapped_us) = measure_overlap_ablation();
    let overlap_overhead = overlapped_us / sendrecv_us - 1.0;
    let ens = measure_ensemble(host_threads);
    let speedup = staged_us / fused_us;
    let measured_ratio = staged.sweep_bytes / fused.sweep_bytes;
    let shape = fusionmodel::SweepShape {
        n: [N, N, N],
        ndim: 3,
        ng: 3,
        neq: 7,
        stencil: 3,
    };
    let modeled_ratio = fusionmodel::traffic_ratio(&shape);

    let snapshot = serde_json::json!({
        "case": "two_phase_benchmark_3d",
        "n": [N, N, N],
        "steps": STEPS,
        "staged_us_per_cell_step": staged_us,
        "fused_us_per_cell_step": fused_us,
        "fused_speedup": speedup,
        "measured_traffic_ratio": measured_ratio,
        "modeled_traffic_ratio": modeled_ratio,
        "staged_cpu_us_per_cell_step": staged_cpu_us,
        "fused_cpu_us_per_cell_step": fused_cpu_us,
        "traced_fused_us_per_cell_step": traced_fused_us,
        "trace_overhead_frac": trace_overhead,
        "overlap_ranks": OVERLAP_RANKS,
        "sendrecv_us_per_cell_step": sendrecv_us,
        "overlapped_us_per_cell_step": overlapped_us,
        "overlap_overhead_frac": overlap_overhead,
        "threads": THREAD_WORKERS,
        "host_cores": host_threads,
        "fused_w4_us_per_cell_step": fused_w4_us,
        "thread_speedup_w4": thread_speedup,
        "threads_skipped_reason": threads_skipped_reason,
        "vector_width": vw,
        "hw_lane_width": hw_width,
        "fused_w4lanes_us_per_cell_step": fused_us,
        "fused_w1lanes_us_per_cell_step": fused_w1.us,
        "vector_speedup": vector_speedup,
        "vector_effective_width": eff.effective_width(),
        "vector_tail_fraction": eff.tail_fraction(),
        "vector_roofline_cap": roofline_cap,
        "vector_predicted_speedup": predicted_vector,
        "ensemble_jobs": ENSEMBLE_STEPS.len(),
        "ensemble_budget": ENSEMBLE_BUDGET,
        "ensemble_slots": ens.slots,
        "ensemble_cells": ENSEMBLE_CELLS,
        "ensemble_makespan_ms": ens.makespan_ms,
        "ensemble_jobs_per_min": ens.jobs_per_min,
        "ensemble_lpt_model_ms": ens.lpt_ms,
        "ensemble_lower_bound_ms": ens.lower_ms,
        "ensemble_lpt_drift": ens.drift,
        "ensemble_serial_ns_per_cell_stage": ens.serial_ns_per_cell_stage,
    });
    println!("{}", serde_json::to_string_pretty(&snapshot).unwrap());

    if !check {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&snapshot).unwrap() + "\n",
        )
        .expect("write snapshot");
        println!("wrote {}", path.display());
        return;
    }

    let mut failures = Vec::new();
    if speedup < MIN_FUSED_SPEEDUP {
        failures.push(format!(
            "fused speedup {speedup:.3} < required {MIN_FUSED_SPEEDUP}"
        ));
    }
    match (fused_w4_us, thread_speedup) {
        (Some(w4), Some(ts)) => {
            println!(
                "thread scaling: fused {fused_us:.4} (1 worker) vs {w4:.4} \
                 ({THREAD_WORKERS} workers) us/cell/step — {ts:.2}x"
            );
            if ts < MIN_THREAD_SPEEDUP_W4 {
                failures.push(format!(
                    "{THREAD_WORKERS}-worker fused speedup {ts:.2}x < required \
                     {MIN_THREAD_SPEEDUP_W4}x"
                ));
            }
        }
        _ => println!(
            "thread scaling: skipped — {}",
            threads_skipped_reason.as_deref().unwrap_or("unknown")
        ),
    }
    println!(
        "vector lanes (W={vw}, hw {hw_width}): fused {:.4} (W=1) vs {fused_us:.4} \
         us/cell/step — {vector_speedup:.2}x measured, {predicted_vector:.2}x predicted \
         (effective width {:.2}, tail {:.1}%, roofline cap {roofline_cap:.1}x)",
        fused_w1.us,
        eff.effective_width(),
        eff.tail_fraction() * 100.0,
    );
    if predicted_vector >= MIN_VECTOR_SPEEDUP {
        if vector_speedup < MIN_VECTOR_SPEEDUP {
            failures.push(format!(
                "vector-lane speedup {vector_speedup:.2}x < required {MIN_VECTOR_SPEEDUP}x \
                 (roofline predicts {predicted_vector:.2}x)"
            ));
        }
        let vec_drift = (vector_speedup / predicted_vector - 1.0).abs();
        if vec_drift > MAX_MODEL_DRIFT {
            failures.push(format!(
                "vector speedup {vector_speedup:.2}x drifts {:.0}% from the \
                 vector-efficiency model's {predicted_vector:.2}x",
                vec_drift * 100.0
            ));
        }
    } else {
        println!(
            "  (model predicts only {predicted_vector:.2}x on this host — \
             {MIN_VECTOR_SPEEDUP}x gate skipped)"
        );
    }
    println!(
        "ensemble ({} jobs, budget {ENSEMBLE_BUDGET}, {} slot(s)): makespan {:.1} ms vs \
         LPT model {:.1} ms ({:+.1}%; lower bound {:.1} ms) — {:.1} jobs/min",
        ENSEMBLE_STEPS.len(),
        ens.slots,
        ens.makespan_ms,
        ens.lpt_ms,
        ens.drift * 100.0,
        ens.lower_ms,
        ens.jobs_per_min,
    );
    if ens.drift.abs() > MAX_ENSEMBLE_LPT_DRIFT {
        failures.push(format!(
            "ensemble makespan {:.1} ms drifts {:.0}% from the LPT model's {:.1} ms \
             (> {:.0}% allowed)",
            ens.makespan_ms,
            ens.drift.abs() * 100.0,
            ens.lpt_ms,
            MAX_ENSEMBLE_LPT_DRIFT * 100.0
        ));
    }
    let drift = (measured_ratio / modeled_ratio - 1.0).abs();
    if drift > MAX_MODEL_DRIFT {
        failures.push(format!(
            "measured traffic ratio {measured_ratio:.3} drifts {:.0}% from model {modeled_ratio:.3}",
            drift * 100.0
        ));
    }
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let baseline: serde_json::Value =
                serde_json::from_str(&text).expect("parse committed snapshot");
            let base_fused = baseline["fused_us_per_cell_step"]
                .as_f64()
                .expect("fused_us_per_cell_step in baseline");
            let regression = fused_us / base_fused - 1.0;
            println!(
                "fused grind: {fused_us:.4} us/cell/step vs committed {base_fused:.4} ({:+.1}%)",
                regression * 100.0
            );
            if regression > MAX_GRIND_REGRESSION {
                failures.push(format!(
                    "fused grind regressed {:.0}% vs committed baseline (> {:.0}% allowed)",
                    regression * 100.0,
                    MAX_GRIND_REGRESSION * 100.0
                ));
            }
            // The untraced measurement *is* the tracing-disabled fast
            // path: instrumentation compiled in, no tracer attached.
            // Compared on the thread-CPU clock so host load cannot trip
            // a 2% bar.
            println!(
                "paired tracing overhead: {:+.2}% (gate {:.0}%; committed {:+.2}%)",
                trace_overhead * 100.0,
                MAX_TRACE_OVERHEAD * 100.0,
                baseline["trace_overhead_frac"].as_f64().unwrap_or(0.0) * 100.0
            );
            if trace_overhead > MAX_TRACE_OVERHEAD {
                failures.push(format!(
                    "tracing overhead {:.1}% exceeds the {:.0}% gate",
                    trace_overhead * 100.0,
                    MAX_TRACE_OVERHEAD * 100.0
                ));
            }
            println!(
                "overlap ablation ({OVERLAP_RANKS} ranks): sendrecv {sendrecv_us:.4} vs \
                 overlapped {overlapped_us:.4} us/cell/step ({:+.1}%; gate {:.0}%; committed {:+.1}%)",
                overlap_overhead * 100.0,
                MAX_OVERLAP_OVERHEAD * 100.0,
                baseline["overlap_overhead_frac"].as_f64().unwrap_or(0.0) * 100.0
            );
            if overlap_overhead > MAX_OVERLAP_OVERHEAD {
                failures.push(format!(
                    "overlapped exchange costs {:.1}% over sendrecv (> {:.0}% allowed)",
                    overlap_overhead * 100.0,
                    MAX_OVERLAP_OVERHEAD * 100.0
                ));
            }
            match baseline["ensemble_makespan_ms"].as_f64() {
                Some(base) => {
                    let regression = ens.makespan_ms / base - 1.0;
                    println!(
                        "ensemble makespan: {:.1} ms vs committed {base:.1} ms ({:+.1}%)",
                        ens.makespan_ms,
                        regression * 100.0
                    );
                    if regression > MAX_ENSEMBLE_REGRESSION {
                        failures.push(format!(
                            "ensemble makespan regressed {:.0}% vs committed baseline \
                             (> {:.0}% allowed)",
                            regression * 100.0,
                            MAX_ENSEMBLE_REGRESSION * 100.0
                        ));
                    }
                }
                None => println!(
                    "ensemble makespan: committed baseline predates the ensemble axis — \
                     regression gate skipped"
                ),
            }
        }
        Err(e) => failures.push(format!("no committed baseline at {}: {e}", path.display())),
    }

    if failures.is_empty() {
        println!("perf snapshot OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
