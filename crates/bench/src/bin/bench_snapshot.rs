//! Perf-trajectory snapshot: staged vs fused grind time on a small fixed
//! case, plus the modeled-vs-measured sweep traffic ratio.
//!
//! Usage:
//!   `cargo run --release -p mfc-bench --bin bench_snapshot -- [--check] [PATH]`
//!
//! Without `--check`, measures and writes the snapshot JSON to `PATH`
//! (default `BENCH_grind.json` at the repo root) — commit the result as the
//! next point on the perf trajectory. With `--check`, measures, compares
//! against the committed snapshot at `PATH`, and exits non-zero if
//!
//!   * fused grind is < 1.3x faster than staged on the 3-D benchmark case,
//!   * the ledger-measured staged/fused traffic ratio drifts more than 25%
//!     from the `fusionmodel` prediction, or
//!   * fused grind regresses by more than 20% against the committed
//!     baseline.
//!
//! Timings are best-of-`REPS` over `STEPS`-step runs to shave scheduler
//! noise; run under `--release` or the numbers are meaningless.

use std::path::PathBuf;
use std::time::Instant;

use mfc_acc::Context;
use mfc_core::case::presets;
use mfc_core::rhs::RhsMode;
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_perfmodel::fusionmodel;

const N: usize = 24;
const WARMUP_STEPS: usize = 3;
const STEPS: usize = 12;
const REPS: usize = 3;

const MIN_FUSED_SPEEDUP: f64 = 1.3;
const MAX_MODEL_DRIFT: f64 = 0.25;
const MAX_GRIND_REGRESSION: f64 = 0.20;

fn solver_for(mode: RhsMode) -> Solver {
    let case = presets::two_phase_benchmark(3, [N, N, N]);
    let mut cfg = SolverConfig {
        dt: DtMode::Cfl(0.4),
        ..Default::default()
    };
    cfg.rhs.mode = mode;
    Solver::new(&case, cfg, Context::serial())
}

/// Best-of-reps grind time in µs per cell per step, plus the sweep bytes
/// the ledger recorded for one measured run.
fn measure(mode: RhsMode) -> (f64, f64) {
    let cells = (N * N * N) as f64;
    let mut best = f64::INFINITY;
    let mut bytes = 0.0;
    for _ in 0..REPS {
        let mut solver = solver_for(mode);
        solver.run_steps(WARMUP_STEPS).unwrap();
        let before = fusionmodel::measured_sweep_bytes(
            &solver.context().ledger().kernel_stats(),
            mode == RhsMode::Fused,
        );
        let t0 = Instant::now();
        solver.run_steps(STEPS).unwrap();
        let us = t0.elapsed().as_secs_f64() * 1e6 / (cells * STEPS as f64);
        if us < best {
            best = us;
            bytes = fusionmodel::measured_sweep_bytes(
                &solver.context().ledger().kernel_stats(),
                mode == RhsMode::Fused,
            ) - before;
        }
    }
    (best, bytes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_grind.json")
        });

    let (staged_us, staged_bytes) = measure(RhsMode::Staged);
    let (fused_us, fused_bytes) = measure(RhsMode::Fused);
    let speedup = staged_us / fused_us;
    let measured_ratio = staged_bytes / fused_bytes;
    let shape = fusionmodel::SweepShape {
        n: [N, N, N],
        ndim: 3,
        ng: 3,
        neq: 7,
        stencil: 3,
    };
    let modeled_ratio = fusionmodel::traffic_ratio(&shape);

    let snapshot = serde_json::json!({
        "case": "two_phase_benchmark_3d",
        "n": [N, N, N],
        "steps": STEPS,
        "staged_us_per_cell_step": staged_us,
        "fused_us_per_cell_step": fused_us,
        "fused_speedup": speedup,
        "measured_traffic_ratio": measured_ratio,
        "modeled_traffic_ratio": modeled_ratio,
    });
    println!("{}", serde_json::to_string_pretty(&snapshot).unwrap());

    if !check {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&snapshot).unwrap() + "\n",
        )
        .expect("write snapshot");
        println!("wrote {}", path.display());
        return;
    }

    let mut failures = Vec::new();
    if speedup < MIN_FUSED_SPEEDUP {
        failures.push(format!(
            "fused speedup {speedup:.3} < required {MIN_FUSED_SPEEDUP}"
        ));
    }
    let drift = (measured_ratio / modeled_ratio - 1.0).abs();
    if drift > MAX_MODEL_DRIFT {
        failures.push(format!(
            "measured traffic ratio {measured_ratio:.3} drifts {:.0}% from model {modeled_ratio:.3}",
            drift * 100.0
        ));
    }
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let baseline: serde_json::Value =
                serde_json::from_str(&text).expect("parse committed snapshot");
            let base_fused = baseline["fused_us_per_cell_step"]
                .as_f64()
                .expect("fused_us_per_cell_step in baseline");
            let regression = fused_us / base_fused - 1.0;
            println!(
                "fused grind: {fused_us:.4} us/cell/step vs committed {base_fused:.4} ({:+.1}%)",
                regression * 100.0
            );
            if regression > MAX_GRIND_REGRESSION {
                failures.push(format!(
                    "fused grind regressed {:.0}% vs committed baseline (> {:.0}% allowed)",
                    regression * 100.0,
                    MAX_GRIND_REGRESSION * 100.0
                ));
            }
        }
        Err(e) => failures.push(format!("no committed baseline at {}: {e}", path.display())),
    }

    if failures.is_empty() {
        println!("perf snapshot OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
