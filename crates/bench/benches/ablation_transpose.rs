//! §III-D ablation: collapsed-loop vs library-style batched transposes.
//!
//! "A seven-fold reduction in computational time is achieved for these
//! kernels when using hipBLAS libraries" (vs fully collapsed OpenACC
//! loops on MI250X). On the CPU the analogous gap is naive strided loops
//! vs cache-tiled / two-step batched GEAM transposes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mfc_bench::packed_buffer;
use mfc_layout::{
    transpose_2134_geam, transpose_2134_naive, transpose_3214_geam, transpose_3214_naive,
    transpose_3214_tiled, Dims4, Flat4D,
};

const N: usize = 128;
const NF: usize = 7;

fn bench_transposes(c: &mut Criterion) {
    let a = packed_buffer(N, N, N, NF);
    let dims = a.dims();

    let mut g = c.benchmark_group("ablation_transpose");
    g.throughput(Throughput::Elements(dims.len() as u64));
    g.sample_size(10);

    // (3,2,1,4): the z-coalescing permutation (two GEAMs in Listing 4).
    let mut out = Flat4D::zeros(dims.permuted_3214());
    g.bench_function("z_collapsed_loops", |b| {
        b.iter(|| {
            transpose_3214_naive(&a, &mut out);
            std::hint::black_box(out.as_slice()[0])
        })
    });
    g.bench_function("z_tiled", |b| {
        b.iter(|| {
            transpose_3214_tiled(&a, &mut out);
            std::hint::black_box(out.as_slice()[0])
        })
    });
    let mut scratch = Vec::new();
    g.bench_function("z_geam_two_step", |b| {
        b.iter(|| {
            transpose_3214_geam(&a, &mut scratch, &mut out);
            std::hint::black_box(out.as_slice()[0])
        })
    });

    // (2,1,3,4): the y-coalescing permutation (one strided batched GEAM).
    let mut out2 = Flat4D::zeros(Dims4::new(dims.n2, dims.n1, dims.n3, dims.n4));
    g.bench_function("y_collapsed_loops", |b| {
        b.iter(|| {
            transpose_2134_naive(&a, &mut out2);
            std::hint::black_box(out2.as_slice()[0])
        })
    });
    g.bench_function("y_geam_batched", |b| {
        b.iter(|| {
            transpose_2134_geam(&a, &mut out2);
            std::hint::black_box(out2.as_slice()[0])
        })
    });

    g.finish();
}

criterion_group!(benches, bench_transposes);
criterion_main!(benches);
