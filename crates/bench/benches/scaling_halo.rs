//! Communication-path benchmarks: the real halo exchange on simulated
//! ranks (functional layer of Figs. 2–4), the azimuthal FFT filter, and
//! the wave-throttled I/O of §III-A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mfc_core::case::presets;
use mfc_core::par::run_distributed;
use mfc_core::solver::SolverConfig;
use mfc_fft::{lowpass_filter_line, LowpassPlan};
use mfc_mpsim::{Staging, WaveWriter, World};

fn bench_halo_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange");
    g.sample_size(10);
    for ranks in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("two_phase_2d_step", ranks),
            &ranks,
            |b, &r| {
                let case = presets::two_phase_benchmark(2, [24, 24, 1]);
                let cfg = SolverConfig::default();
                b.iter(|| {
                    let (field, _) =
                        run_distributed(&case, cfg, r, 1, Staging::DeviceDirect).unwrap();
                    std::hint::black_box(field.data[0])
                })
            },
        );
    }
    g.finish();
}

fn bench_fft_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_filter");
    g.sample_size(20);
    for n in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("lowpass_line", n), &n, |b, &n| {
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
            let mut line = base.clone();
            b.iter(|| {
                line.copy_from_slice(&base);
                lowpass_filter_line(&mut line, n / 8);
                std::hint::black_box(line[0])
            })
        });
    }
    g.bench_function("plan_apply_128_rings", |b| {
        let plan = LowpassPlan::new(128, 256);
        let base: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut line = base.clone();
        b.iter(|| {
            for j in 0..128 {
                line.copy_from_slice(&base);
                plan.apply_line(j, &mut line);
            }
            std::hint::black_box(line[0])
        })
    });
    g.finish();
}

fn bench_wave_io(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("mfc_bench_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut g = c.benchmark_group("wave_io");
    g.sample_size(10);
    for wave in [1usize, 4, 128] {
        g.bench_with_input(
            BenchmarkId::new("file_per_process_8ranks", wave),
            &wave,
            |b, &w| {
                let dirref = &dir;
                b.iter(|| {
                    World::run(8, |comm| {
                        let data = vec![comm.rank() as f64; 4096];
                        WaveWriter::new(w).write(&comm, dirref, 0, &data).unwrap();
                    });
                })
            },
        );
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_halo_exchange,
    bench_fft_filter,
    bench_wave_io
);
criterion_main!(benches);
