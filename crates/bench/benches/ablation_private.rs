//! §III-D ablation: compile-time vs runtime-sized private arrays.
//!
//! "One kernel… went from taking 90% of the total runtime to just 3%…
//! when just one O(1)-element array in its private clause had its size
//! declared at compile time."  A runtime-sized private array on CCE
//! triggers a device-side allocation with a device↔host handshake; the
//! host analog of that pathology is a heap allocation inside every
//! kernel iteration, vs a stack array whose size the compiler knows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig, PrivateMode};

const CELLS: usize = 200_000;
const NEQ: usize = 7;

fn body(cell: usize, scratch: &mut [f64]) -> f64 {
    // A per-cell working vector: load, transform, reduce.
    for (e, s) in scratch.iter_mut().enumerate() {
        *s = (cell as f64 * 1e-5 + e as f64).sin();
    }
    let mut acc = 0.0;
    for e in 0..scratch.len() {
        acc += scratch[e] * scratch[(e + 1) % scratch.len()];
    }
    acc
}

fn bench_private_arrays(c: &mut Criterion) {
    let ctx = Context::serial();
    let cost = KernelCost::new(KernelClass::Other, 30.0, 56.0, 0.0);

    let mut g = c.benchmark_group("ablation_private");
    g.throughput(Throughput::Elements(CELLS as u64));
    g.sample_size(10);

    g.bench_function("compile_time_sized", |b| {
        let cfg = LaunchConfig::tuned("private_stack").with_private(PrivateMode::CompileTimeSized);
        b.iter(|| {
            let mut total = 0.0;
            ctx.launch(&cfg, cost, CELLS, |cell| {
                let mut scratch = [0.0f64; NEQ]; // size known at compile time
                total += body(cell, &mut scratch);
            });
            std::hint::black_box(total)
        })
    });

    g.bench_function("runtime_sized", |b| {
        let cfg = LaunchConfig::tuned("private_heap").with_private(PrivateMode::RuntimeSized);
        let neq = std::hint::black_box(NEQ); // size only known at run time
        b.iter(|| {
            let mut total = 0.0;
            ctx.launch(&cfg, cost, CELLS, |cell| {
                let mut scratch = vec![0.0f64; neq]; // per-iteration allocation
                total += body(cell, &mut scratch);
            });
            std::hint::black_box(total)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_private_arrays);
criterion_main!(benches);
