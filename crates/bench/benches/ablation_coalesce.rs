//! §III-C ablation: coalesced vs strided sweep access.
//!
//! "Coalescing memory results in a ten-times speedup in the WENO kernel…
//! This reduction outweighs the cost required to transpose the arrays."
//!
//! The y-sweep WENO kernel is run three ways over the same data:
//! * `strided_gpu_like_order`: the sweep index is the innermost
//!   (fastest-moving) loop, as it is the fastest thread index in the
//!   device kernel, so consecutive iterations touch addresses `n1`
//!   elements apart — the uncoalesced pattern the paper eliminates;
//! * `strided_cache_friendly_order`: same data, transverse index
//!   innermost — the loop order a CPU programmer would pick, which deep
//!   CPU caches largely absorb (this variant has no GPU counterpart:
//!   device kernels cannot reorder the thread-coalescing dimension away);
//! * `reshape_then_unit_stride`: pay a (2,1,3,4) GEAM reshape first, then
//!   sweep unit-stride lines — the paper's strategy, transpose cost
//!   included.
//!
//! On GPUs variant 1 vs 3 is the 10x of §III-C. On a cached CPU the gap
//! is far smaller (see EXPERIMENTS.md) — which is itself the point: the
//! optimization is specifically about GPU memory coalescing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mfc_bench::{packed_buffer, BENCH_NF};
use mfc_core::weno::weno5_face;
use mfc_layout::{transpose_2134_geam, Dims4, Flat4D};

const N1: usize = 100;
const N2: usize = 106; // y carries the ghosts for a y sweep
const N3: usize = 100;

fn bench_coalescing(c: &mut Criterion) {
    let xbuf = packed_buffer(N1, N2, N3, BENCH_NF);
    let faces = N2 - 6;

    let mut g = c.benchmark_group("ablation_coalesce");
    g.throughput(Throughput::Elements((faces * N1 * N3 * BENCH_NF) as u64));
    g.sample_size(10);

    g.bench_function("strided_gpu_like_order", |b| {
        let d = xbuf.dims();
        let s = xbuf.as_slice();
        b.iter(|| {
            let mut acc = 0.0;
            for f in 0..BENCH_NF {
                for k in 0..N3 {
                    for i in 0..N1 {
                        // Sweep index innermost: consecutive iterations
                        // jump n1 elements — the uncoalesced pattern.
                        for m in 0..faces {
                            let jc = 2 + m;
                            let base = d.idx(i, jc, k, f);
                            acc += weno5_face(&[
                                s[base - 2 * N1],
                                s[base - N1],
                                s[base],
                                s[base + N1],
                                s[base + 2 * N1],
                            ]);
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });

    g.bench_function("strided_cache_friendly_order", |b| {
        let d = xbuf.dims();
        let s = xbuf.as_slice();
        b.iter(|| {
            let mut acc = 0.0;
            for f in 0..BENCH_NF {
                for k in 0..N3 {
                    for m in 0..faces {
                        let jc = 2 + m;
                        for i in 0..N1 {
                            let base = d.idx(i, jc, k, f);
                            acc += weno5_face(&[
                                s[base - 2 * N1],
                                s[base - N1],
                                s[base],
                                s[base + N1],
                                s[base + 2 * N1],
                            ]);
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });

    g.bench_function("reshape_then_unit_stride", |b| {
        let mut ybuf = Flat4D::zeros(Dims4::new(N2, N1, N3, BENCH_NF));
        b.iter(|| {
            // The transpose is part of the cost, as in the paper.
            transpose_2134_geam(&xbuf, &mut ybuf);
            let mut acc = 0.0;
            for f in 0..BENCH_NF {
                for k in 0..N3 {
                    for i in 0..N1 {
                        let line = ybuf.line(i, k, f);
                        for m in 0..faces {
                            let c = 2 + m;
                            acc += weno5_face(&[
                                line[c - 2],
                                line[c - 1],
                                line[c],
                                line[c + 1],
                                line[c + 2],
                            ]);
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_coalescing);
criterion_main!(benches);
