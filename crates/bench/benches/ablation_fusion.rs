//! Fusion ablation: staged grid-sized sweep buffers vs the fused pencil
//! engine (`RhsMode::Staged` vs `RhsMode::Fused`).
//!
//! The fused engine skips the ghost transverse lines the staged pipeline
//! reconstructs and then discards, and replaces grid-sized intermediates
//! with cache-resident per-pencil scratch. `mfc_perfmodel::fusionmodel`
//! predicts the resulting bytes-moved ratio; before timing, this bench
//! replays one step per mode against the ledger and prints the
//! modeled-vs-measured ratio so a drift between the launch-site cost
//! declarations and the model shows up next to the timings it explains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mfc_acc::Context;
use mfc_core::case::presets;
use mfc_core::rhs::RhsMode;
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_perfmodel::fusionmodel;

const N: usize = 24;

fn solver_for(mode: RhsMode) -> Solver {
    let case = presets::two_phase_benchmark(3, [N, N, N]);
    let mut cfg = SolverConfig {
        dt: DtMode::Cfl(0.4),
        ..Default::default()
    };
    cfg.rhs.mode = mode;
    Solver::new(&case, cfg, Context::serial())
}

fn measured_bytes(mode: RhsMode) -> f64 {
    let mut solver = solver_for(mode);
    solver.run_steps(1).unwrap();
    let stats = solver.context().ledger().kernel_stats();
    fusionmodel::measured_sweep_bytes(&stats, mode == RhsMode::Fused)
}

fn bench_fusion(c: &mut Criterion) {
    let shape = fusionmodel::SweepShape {
        n: [N, N, N],
        ndim: 3,
        ng: 3,
        neq: 7,
        stencil: 3,
    };
    let modeled = fusionmodel::traffic_ratio(&shape);
    let measured = measured_bytes(RhsMode::Staged) / measured_bytes(RhsMode::Fused);
    println!(
        "staged/fused sweep traffic ratio: modeled {modeled:.3}, ledger-measured {measured:.3}"
    );

    let cells = N * N * N;
    let mut g = c.benchmark_group("ablation_fusion");
    g.throughput(Throughput::Elements((cells * 7 * 3) as u64));
    g.sample_size(10);

    for mode in [RhsMode::Staged, RhsMode::Fused] {
        g.bench_with_input(
            BenchmarkId::new("two_phase_3d_step", mode.name()),
            &mode,
            |b, &mode| {
                let mut solver = solver_for(mode);
                b.iter(|| {
                    solver.step().unwrap();
                    std::hint::black_box(solver.time())
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
