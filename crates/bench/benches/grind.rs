//! End-to-end grind time of the full solver (the CPU column of Fig. 5).
//!
//! Measures ns / cell / PDE / RHS evaluation on this host for the
//! representative two-phase problem, across pack strategies and
//! reconstruction orders — the numbers EXPERIMENTS.md reports next to the
//! paper's per-socket CPU grind times.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mfc_acc::Context;
use mfc_core::case::presets;
use mfc_core::rhs::{PackStrategy, RhsConfig, RhsMode};
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_core::weno::WenoOrder;
use mfc_trace::Tracer;

fn bench_grind(c: &mut Criterion) {
    let n = [24usize, 24, 24];
    let cells = n[0] * n[1] * n[2];

    let mut g = c.benchmark_group("grind_time");
    // Throughput in cell-PDE-RHS units so criterion reports ns per unit —
    // directly comparable to the paper's grind metric.
    g.throughput(Throughput::Elements((cells * 7 * 3) as u64));
    g.sample_size(10);

    for pack in [
        PackStrategy::CollapsedLoops,
        PackStrategy::Tiled,
        PackStrategy::Geam,
    ] {
        g.bench_with_input(
            BenchmarkId::new("two_phase_3d_step", format!("{pack:?}")),
            &pack,
            |b, &pack| {
                let case = presets::two_phase_benchmark(3, n);
                let cfg = SolverConfig {
                    rhs: RhsConfig {
                        pack,
                        // Pack strategies only matter for the staged
                        // pipeline's y/z reshapes.
                        mode: RhsMode::Staged,
                        ..Default::default()
                    },
                    dt: DtMode::Cfl(0.4),
                    ..Default::default()
                };
                let mut solver = Solver::new(&case, cfg, Context::serial());
                b.iter(|| {
                    solver.step().unwrap();
                    std::hint::black_box(solver.time())
                })
            },
        );
    }

    for mode in [RhsMode::Staged, RhsMode::Fused] {
        g.bench_with_input(BenchmarkId::new("mode", mode.name()), &mode, |b, &mode| {
            let case = presets::two_phase_benchmark(3, n);
            let cfg = SolverConfig {
                rhs: RhsConfig {
                    mode,
                    ..Default::default()
                },
                dt: DtMode::Cfl(0.4),
                ..Default::default()
            };
            let mut solver = Solver::new(&case, cfg, Context::serial());
            b.iter(|| {
                solver.step().unwrap();
                std::hint::black_box(solver.time())
            })
        });
    }

    // Tracing axis on the fused engine: "disabled" is the no-tracer fast
    // path (must be free — bench_snapshot gates it at 2%), "enabled" has a
    // live span/kernel event stream attached.
    for traced in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("tracing", if traced { "enabled" } else { "disabled" }),
            &traced,
            |b, &traced| {
                let case = presets::two_phase_benchmark(3, n);
                let cfg = SolverConfig {
                    rhs: RhsConfig {
                        mode: RhsMode::Fused,
                        ..Default::default()
                    },
                    dt: DtMode::Cfl(0.4),
                    ..Default::default()
                };
                let mut ctx = Context::serial();
                let tracer = Arc::new(Tracer::new());
                if traced {
                    ctx.set_tracer(tracer.handle(0));
                }
                let mut solver = Solver::new(&case, cfg, ctx);
                b.iter(|| {
                    solver.step().unwrap();
                    std::hint::black_box(solver.time())
                })
            },
        );
    }

    for order in [WenoOrder::Weno3, WenoOrder::Weno5] {
        g.bench_with_input(
            BenchmarkId::new("order", format!("{order:?}")),
            &order,
            |b, &order| {
                let case = presets::two_phase_benchmark(3, n);
                let cfg = SolverConfig {
                    rhs: RhsConfig {
                        order,
                        ..Default::default()
                    },
                    dt: DtMode::Cfl(0.4),
                    ..Default::default()
                };
                let mut solver = Solver::new(&case, cfg, Context::serial());
                b.iter(|| {
                    solver.step().unwrap();
                    std::hint::black_box(solver.time())
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_grind);
criterion_main!(benches);
