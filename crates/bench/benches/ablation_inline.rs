//! §III-C ablation: inlined vs un-inlinable serial subroutines in kernels.
//!
//! "Inlining serial subroutines via programmer directives with Fypp
//! prevents a tenfold slowdown of the Riemann and WENO kernels that would
//! otherwise call serial subroutines."
//!
//! The un-inlinable cross-module call is modelled by dynamic dispatch
//! (`dyn Fn` per operand), which — like an un-inlined device routine —
//! defeats constant propagation, vectorization, and register allocation
//! across the call.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const N: usize = 1_000_000;

/// The "serial subroutine" body: a stiffened-gas pressure + flux-ish
/// computation per cell.
#[inline(always)]
fn eos_kernel(rho: f64, e: f64, gamma: f64, pi: f64) -> f64 {
    let p = (gamma - 1.0) * rho * e - gamma * pi;
    let c2 = gamma * (p + pi) / rho;
    p + rho * c2
}

#[inline(never)]
fn eos_kernel_outlined(rho: f64, e: f64, gamma: f64, pi: f64) -> f64 {
    eos_kernel(rho, e, gamma, pi)
}

fn inputs() -> (Vec<f64>, Vec<f64>) {
    let rho: Vec<f64> = (0..N)
        .map(|i| 1.0 + 0.3 * ((i as f64) * 1e-4).sin())
        .collect();
    let e: Vec<f64> = (0..N)
        .map(|i| 2.5e5 * (1.0 + 0.1 * ((i as f64) * 2e-4).cos()))
        .collect();
    (rho, e)
}

fn bench_inlining(c: &mut Criterion) {
    let (rho, e) = inputs();
    let mut g = c.benchmark_group("ablation_inline");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);

    g.bench_function("inlined", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (&r, &ei) in rho.iter().zip(&e) {
                acc += eos_kernel(r, ei, 1.4, 0.0);
            }
            std::hint::black_box(acc)
        })
    });

    g.bench_function("outlined_call", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (&r, &ei) in rho.iter().zip(&e) {
                acc += eos_kernel_outlined(r, ei, 1.4, 0.0);
            }
            std::hint::black_box(acc)
        })
    });

    // Fully opaque indirect call per cell — the pattern the compiler
    // cannot inline across modules.
    let table: Vec<Box<dyn Fn(f64, f64) -> f64 + Sync>> = vec![
        Box::new(|r, ei| eos_kernel(r, ei, 1.4, 0.0)),
        Box::new(|r, ei| eos_kernel(r, ei, 6.12, 3.43e8)),
    ];
    g.bench_function("dynamic_dispatch", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, (&r, &ei)) in rho.iter().zip(&e).enumerate() {
                let f = &table[i & 1];
                acc += f(r, ei);
            }
            std::hint::black_box(acc)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_inlining);
criterion_main!(benches);
