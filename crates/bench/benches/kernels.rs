//! Kernel-level benchmarks: the WENO reconstruction and approximate
//! Riemann solve that dominate Figs. 1, 6, and 7, plus the conversion and
//! packing stages, measured on the host CPU.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mfc_acc::Context;
use mfc_bench::{packed_buffer, BENCH_N, BENCH_NF};
use mfc_core::eqidx::EqIdx;
use mfc_core::fluid::Fluid;
use mfc_core::riemann::RiemannSolver;
use mfc_core::weno::{reconstruct_sweep, WenoOrder};
use mfc_layout::{Dims4, Flat4D};

fn bench_weno(c: &mut Criterion) {
    let n = BENCH_N;
    let ctx = Context::serial();

    let mut g = c.benchmark_group("weno_kernel");
    let fdims = Dims4::new(n + 1, n / 8, 8, BENCH_NF);
    g.throughput(Throughput::Elements(fdims.len() as u64));
    g.sample_size(10);
    for (name, order) in [
        ("weno5", WenoOrder::Weno5),
        ("weno5z", WenoOrder::Weno5Z),
        ("weno3", WenoOrder::Weno3),
    ] {
        // The packed buffer's ghost width must match the stencil.
        let ng = order.ghost_layers();
        let packed = packed_buffer(n + 2 * ng, n / 8, 8, BENCH_NF);
        let mut left = Flat4D::zeros(fdims);
        let mut right = Flat4D::zeros(fdims);
        g.bench_function(name, |b| {
            b.iter(|| {
                reconstruct_sweep(&ctx, order, &packed, n, &mut left, &mut right);
                std::hint::black_box(left.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_riemann(c: &mut Criterion) {
    let eq = EqIdx::new(2, 3);
    let fluids = [Fluid::air(), Fluid::water()];
    let faces = 100_000;
    // Perturbed face states.
    let mk = |phase: f64| -> Vec<[f64; 7]> {
        (0..faces)
            .map(|i| {
                let s = 0.01 * i as f64 + phase;
                let a = 0.3 + 0.2 * s.sin().abs();
                [
                    1.2 * a,
                    1000.0 * (1.0 - a),
                    30.0 * s.cos(),
                    -10.0 * s.sin(),
                    5.0,
                    1.0e5 * (1.0 + 0.05 * s.sin()),
                    a,
                ]
            })
            .collect()
    };
    let ls = mk(0.0);
    let rs = mk(0.003);

    let mut g = c.benchmark_group("riemann_kernel");
    g.throughput(Throughput::Elements(faces as u64));
    g.sample_size(10);
    for (name, solver) in [
        ("hllc", RiemannSolver::Hllc),
        ("hll", RiemannSolver::Hll),
        ("rusanov", RiemannSolver::Rusanov),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                let mut f = [0.0; 7];
                for (l, r) in ls.iter().zip(&rs) {
                    acc += solver.flux(&eq, &fluids, 0, l, r, &mut f);
                }
                std::hint::black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_weno, bench_riemann);
criterion_main!(benches);
