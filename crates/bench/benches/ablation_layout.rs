//! §III-C ablation: scalar_field derived types vs flattened 4-D arrays.
//!
//! "Using multidimensional arrays rather than user-defined types for a
//! representative two-phase problem with one million grid cells, a sixfold
//! speedup in the WENO kernel was observed."
//!
//! Both variants run the same WENO5 arithmetic over ~1M points; they
//! differ only in where the stencil operands live: one contiguous packed
//! buffer vs `nf` separate per-field allocations indexed through the
//! field handle per access.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mfc_bench::{packed_buffer, scalar_fields, BENCH_NF};
use mfc_core::weno::weno5_face;

const N1: usize = 106; // 100 interior + 6 ghosts
const N2: usize = 100;
const N3: usize = 100;

fn bench_layouts(c: &mut Criterion) {
    let flat = packed_buffer(N1, N2, N3, BENCH_NF);
    let aos = scalar_fields(N1, N2, N3, BENCH_NF);
    let faces = N1 - 6;

    let mut g = c.benchmark_group("ablation_layout");
    g.throughput(Throughput::Elements((faces * N2 * N3 * BENCH_NF) as u64));
    g.sample_size(10);

    // Flat packed buffer: contiguous lines, one allocation.
    g.bench_function("flat_4d_array", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in 0..BENCH_NF {
                for k in 0..N3 {
                    for j in 0..N2 {
                        let line = flat.line(j, k, f);
                        for m in 0..faces {
                            let c = 2 + m;
                            acc += weno5_face(&[
                                line[c - 2],
                                line[c - 1],
                                line[c],
                                line[c + 1],
                                line[c + 2],
                            ]);
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });

    // Array of scalar_field types: every operand goes through the field
    // object's own allocation (Listing 2's pointer indirection).
    g.bench_function("scalar_field_types", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in 0..BENCH_NF {
                for k in 0..N3 {
                    for j in 0..N2 {
                        for m in 0..faces {
                            let c = 2 + m;
                            let sf = aos.field(f);
                            acc += weno5_face(&[
                                sf.get(c - 2, j, k),
                                sf.get(c - 1, j, k),
                                sf.get(c, j, k),
                                sf.get(c + 1, j, k),
                                sf.get(c + 2, j, k),
                            ]);
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
