//! MFC-rs: a Rust reproduction of the MFC compressible multiphase flow
//! solver and its SC'24 GPU-offloading study.
//!
//! This facade re-exports the workspace:
//!
//! * [`mfc_core`] (re-exported as `core`) — the solver (5-equation model, WENO, HLLC, RK3,
//!   IBM, distributed halo exchange).
//! * [`mfc_acc`] (`acc`) — the directive-style execution model with the
//!   FLOP/byte profiling ledger (the OpenACC substitute).
//! * [`mfc_layout`] (`layout`) — scalar-field vs flat coalesced array layouts
//!   and the GEAM-style transposes.
//! * [`mfc_mpsim`] (`mpsim`) — the rank simulator, cartesian decomposition,
//!   comm cost model, and wave-throttled I/O.
//! * [`mfc_fft`] (`fft`) — the radix-2 FFT behind the azimuthal filter.
//! * [`mfc_perfmodel`] (`perfmodel`) — the hardware catalog, roofline, and
//!   scaling models that regenerate the paper's figures.
//! * [`mfc_trace`] (`trace`) — the hierarchical span tracer behind
//!   `mfc-run --trace`: per-rank timelines, chrome-trace export, and the
//!   exact cross-check against the kernel ledger (the NSight/rocprof
//!   substitute).
//!
//! Start with `examples/quickstart.rs` (a Sod shock tube validated against
//! the exact Riemann solution), or run one inline:
//!
//! ```
//! use mfc::{presets, Context, Solver, SolverConfig};
//!
//! let case = presets::sod(64);
//! let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
//! solver.run_steps(10).unwrap();
//! assert!(solver.time() > 0.0);
//! // Mass is conserved to round-off even across the shock.
//! let totals = solver.conservation();
//! assert!(totals[0].is_finite());
//! ```

pub use mfc_acc as acc;
pub use mfc_core as core;
pub use mfc_fft as fft;
pub use mfc_layout as layout;
pub use mfc_mpsim as mpsim;
pub use mfc_perfmodel as perfmodel;
pub use mfc_trace as trace;

pub use mfc_acc::Context;
pub use mfc_core::case::{presets, CaseBuilder, PatchState, Region};
pub use mfc_core::solver::{DtMode, Solver, SolverConfig};
