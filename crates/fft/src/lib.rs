//! A self-contained FFT used for MFC's azimuthal low-pass filter.
//!
//! MFC uses FFTW on CPUs, cuFFT on NVIDIA GPUs, and hipFFT on AMD GPUs to
//! low-pass-filter the flow variables in the azimuthal direction of 3-D
//! cylindrical grids, relaxing the CFL restriction near the axis (§III-A).
//! None of those libraries is available here, so this crate implements the
//! same code path from scratch: an iterative radix-2 complex FFT, real
//! forward/inverse transforms (the `D2Z`/`Z2D` pair of Listings 5–6), and
//! the spectral low-pass filter built on them.

pub mod complex;
pub mod fft;
pub mod filter;
pub mod real;

pub use complex::Complex;
pub use fft::{fft_inplace, ifft_inplace, naive_dft};
pub use filter::{lowpass_filter_line, LowpassPlan};
pub use real::{irfft, rfft};
