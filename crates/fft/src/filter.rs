//! The azimuthal low-pass filter applied near the axis of 3-D cylindrical
//! grids (§III-A).
//!
//! Cells adjacent to the axis have azimuthal extents `r Δθ` that shrink with
//! radius, which would force a tiny CFL time step.  MFC instead removes the
//! high-frequency azimuthal content of the flow variables near the axis:
//! forward FFT along θ, zero every mode above a radius-dependent cutoff,
//! inverse FFT.

use crate::complex::Complex;
use crate::real::{irfft, rfft};

/// Zero all modes above `keep_modes` in a real line of samples.
///
/// `keep_modes = 0` keeps only the azimuthal mean; `keep_modes >= n/2`
/// leaves the line unchanged (up to FFT round-off).
pub fn lowpass_filter_line(line: &mut [f64], keep_modes: usize) {
    let n = line.len();
    let mut spec = rfft(line);
    for (k, bin) in spec.iter_mut().enumerate() {
        if k > keep_modes {
            *bin = Complex::ZERO;
        }
    }
    line.copy_from_slice(&irfft(&spec, n));
}

/// A reusable filter plan for a cylindrical grid: one azimuthal cutoff per
/// radial index.
///
/// MFC keeps fewer modes closer to the axis; the standard choice (also used
/// here) keeps a number of modes proportional to the radial index, so the
/// resolved azimuthal wavelength `r Δθ_eff` stays roughly constant and so
/// does the CFL limit.
#[derive(Debug, Clone)]
pub struct LowpassPlan {
    /// `keep[j]` = highest azimuthal mode kept at radial index `j`.
    keep: Vec<usize>,
    /// Azimuthal extent (must be a power of two).
    ntheta: usize,
}

impl LowpassPlan {
    /// Build a plan for `nr` radial cells and `ntheta` azimuthal cells.
    ///
    /// Radial index 0 is the innermost cell; it keeps at least one mode so
    /// rotation information survives.
    pub fn new(nr: usize, ntheta: usize) -> Self {
        assert!(
            ntheta.is_power_of_two(),
            "azimuthal extent {ntheta} must be a power of two"
        );
        let nyquist = ntheta / 2;
        let keep = (0..nr)
            .map(|j| {
                // Keep ~(j+1)/nr of the spectrum, at least mode 1, capped at
                // Nyquist (no filtering at the rim).
                (((j + 1) * nyquist) / nr.max(1)).clamp(1, nyquist)
            })
            .collect();
        LowpassPlan { keep, ntheta }
    }

    /// Cutoff mode at radial index `j`.
    pub fn cutoff(&self, j: usize) -> usize {
        self.keep[j]
    }

    pub fn ntheta(&self) -> usize {
        self.ntheta
    }

    /// Number of radial rings the plan covers.
    pub fn nr(&self) -> usize {
        self.keep.len()
    }

    /// Filter one azimuthal line at radial index `j`.
    pub fn apply_line(&self, j: usize, line: &mut [f64]) {
        assert_eq!(line.len(), self.ntheta);
        if self.keep[j] < self.ntheta / 2 {
            lowpass_filter_line(line, self.keep[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with_modes(n: usize, modes: &[(usize, f64)]) -> Vec<f64> {
        (0..n)
            .map(|m| {
                modes
                    .iter()
                    .map(|&(k, a)| {
                        a * (2.0 * std::f64::consts::PI * (k * m) as f64 / n as f64).cos()
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn filter_removes_high_modes_keeps_low() {
        let n = 64;
        let mut line = line_with_modes(n, &[(2, 1.0), (20, 0.5)]);
        let want = line_with_modes(n, &[(2, 1.0)]);
        lowpass_filter_line(&mut line, 8);
        let err = line
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn filter_preserves_mean() {
        let n = 32;
        let mut line: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 3.0).collect();
        let mean_before: f64 = line.iter().sum::<f64>() / n as f64;
        lowpass_filter_line(&mut line, 0);
        let mean_after: f64 = line.iter().sum::<f64>() / n as f64;
        assert!((mean_before - mean_after).abs() < 1e-12);
        // keep_modes = 0 leaves a constant line.
        for v in &line {
            assert!((v - mean_after).abs() < 1e-12);
        }
    }

    #[test]
    fn full_cutoff_is_identity() {
        let n = 32;
        let orig = line_with_modes(n, &[(1, 1.0), (7, 0.3), (15, 0.1)]);
        let mut line = orig.clone();
        lowpass_filter_line(&mut line, n / 2);
        let err = line
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    fn plan_cutoffs_increase_with_radius() {
        let plan = LowpassPlan::new(16, 64);
        for j in 1..plan.nr() {
            assert!(plan.cutoff(j) >= plan.cutoff(j - 1));
        }
        assert!(plan.cutoff(0) >= 1);
        assert_eq!(plan.cutoff(15), 32); // rim: Nyquist, unfiltered
    }

    #[test]
    fn plan_apply_filters_inner_ring_harder() {
        let n = 64;
        let plan = LowpassPlan::new(8, n);
        let noisy = line_with_modes(n, &[(1, 1.0), (30, 1.0)]);

        let mut inner = noisy.clone();
        plan.apply_line(0, &mut inner);
        let mut outer = noisy.clone();
        plan.apply_line(7, &mut outer);

        let hi_energy = |l: &[f64]| {
            let spec = rfft(l);
            spec[16..].iter().map(|c| c.norm_sqr()).sum::<f64>()
        };
        assert!(hi_energy(&inner) < 1e-18);
        assert!(hi_energy(&outer) > 1.0); // rim untouched
    }
}
