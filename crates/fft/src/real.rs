//! Real-to-complex and complex-to-real transforms — the `cufftExecD2Z` /
//! `cufftExecZ2D` (and hipFFT) pair of Listings 5–6.

use crate::complex::Complex;
use crate::fft::{fft_inplace, ifft_inplace};

/// Forward real-to-complex transform (`D2Z`).
///
/// Returns the `n/2 + 1` non-redundant spectrum bins of a length-`n` real
/// signal (the remaining bins are the conjugate mirror).
///
/// # Panics
/// If `n` is not a power of two.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    fft_inplace(&mut buf);
    buf.truncate(n / 2 + 1);
    buf
}

/// Inverse complex-to-real transform (`Z2D`), normalized so that
/// `irfft(rfft(x), x.len()) == x`.
///
/// `spec` must hold `n/2 + 1` bins; bins `0` and `n/2` are treated as real
/// (their imaginary parts are ignored), matching the symmetry of a real
/// signal's spectrum.
pub fn irfft(spec: &[Complex], n: usize) -> Vec<f64> {
    assert!(n.is_power_of_two(), "length {n} must be a power of two");
    assert_eq!(spec.len(), n / 2 + 1, "spectrum must hold n/2+1 bins");
    let mut buf = vec![Complex::ZERO; n];
    buf[0] = Complex::real(spec[0].re);
    if n >= 2 {
        buf[n / 2] = Complex::real(spec[n / 2].re);
    }
    for k in 1..n / 2 {
        buf[k] = spec[k];
        buf[n - k] = spec[k].conj();
    }
    ifft_inplace(&mut buf);
    buf.into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rfft_irfft_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [2usize, 8, 64, 256] {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let back = irfft(&rfft(&x), n);
            let err = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-12, "n={n} err={err}");
        }
    }

    #[test]
    fn cosine_lands_in_expected_bin() {
        let n = 64;
        let k0 = 3;
        let x: Vec<f64> = (0..n)
            .map(|m| (2.0 * std::f64::consts::PI * (k0 * m) as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&x);
        for (k, v) in spec.iter().enumerate() {
            let expect = if k == k0 { n as f64 / 2.0 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "bin {k}: {}", v.abs());
        }
    }

    #[test]
    fn dc_signal_has_only_dc() {
        let x = vec![2.5; 32];
        let spec = rfft(&x);
        assert!((spec[0].re - 2.5 * 32.0).abs() < 1e-10);
        for v in &spec[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn spectrum_length_is_half_plus_one() {
        assert_eq!(rfft(&[0.0; 16]).len(), 9);
    }
}
