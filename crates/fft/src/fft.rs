//! Iterative radix-2 Cooley–Tukey FFT.

use crate::complex::Complex;

/// In-place forward DFT of a power-of-two-length buffer.
///
/// Convention: `X[k] = sum_n x[n] e^{-2 pi i k n / N}` (unnormalized
/// forward transform, like FFTW/cuFFT/hipFFT).
///
/// ```
/// use mfc_fft::{fft_inplace, ifft_inplace, Complex};
/// let x: Vec<Complex> = (0..8).map(|i| Complex::real(i as f64)).collect();
/// let mut y = x.clone();
/// fft_inplace(&mut y);
/// ifft_inplace(&mut y);
/// assert!((y[3] - x[3]).abs() < 1e-12);
/// ```
///
/// # Panics
/// If the length is not a power of two.
pub fn fft_inplace(buf: &mut [Complex]) {
    fft_dir(buf, -1.0);
}

/// In-place inverse DFT, including the `1/N` normalization, so that
/// `ifft(fft(x)) == x`.
///
/// (cuFFT and hipFFT leave the scaling to the caller; MFC divides by the
/// azimuthal extent after `Z2D`. We fold it in here so round-trips are
/// identities.)
pub fn ifft_inplace(buf: &mut [Complex]) {
    fft_dir(buf, 1.0);
    let scale = 1.0 / buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(scale);
    }
}

fn fft_dir(buf: &mut [Complex], sign: f64) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(buf);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let mut w = Complex::ONE;
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

fn bit_reverse_permute(buf: &mut [Complex]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

/// O(N^2) reference DFT with the same sign convention as [`fft_inplace`].
/// Used as the test oracle; works for any length.
pub fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (m, &v) in x.iter().enumerate() {
                acc += v * Complex::cis(-2.0 * std::f64::consts::PI * (k * m) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = rand_signal(n, n as u64);
            let want = naive_dft(&x);
            let mut got = x.clone();
            fft_inplace(&mut got);
            assert!(max_err(&got, &want) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x = rand_signal(256, 7);
        let mut y = x.clone();
        fft_inplace(&mut y);
        ifft_inplace(&mut y);
        assert!(max_err(&x, &y) < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        fft_inplace(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-14 && v.im.abs() < 1e-14);
        }
    }

    #[test]
    fn single_mode_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|m| Complex::cis(2.0 * std::f64::consts::PI * (k0 * m) as f64 / n as f64))
            .collect();
        fft_inplace(&mut x);
        for (k, v) in x.iter().enumerate() {
            let expect = if k == k0 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_holds() {
        let x = rand_signal(128, 3);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x.clone();
        fft_inplace(&mut y);
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x);
    }
}
