//! A minimal double-precision complex number.
//!
//! Only the operations the FFT needs; deliberately not a general complex
//! arithmetic library.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline(always)]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline(always)]
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by the imaginary unit.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!((a * b).re, 1.0 * -3.0 - 2.0 * 0.5);
        assert_eq!((a * b).im, 1.0 * 0.5 + 2.0 * -3.0);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..8 {
            let c = Complex::cis(k as f64 * 0.7);
            assert!((c.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn mul_i_rotates_quarter_turn() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.mul_i(), Complex::new(-4.0, 3.0));
        assert_eq!(a.mul_i().mul_i(), -a);
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert_eq!((a * a.conj()).re, a.norm_sqr());
    }
}
