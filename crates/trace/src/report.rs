//! Human-readable rendering of a parsed trace: the profile summary a
//! `nsys stats` / `rocprof --stats` run would print.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::aggregate::{aggregate_kernels, reconcile_trace, splits, KernelAgg};
use crate::chrome::ParsedTrace;

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.3} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.3} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.3} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Merge per-rank kernel aggregates into job-wide totals per label.
fn job_totals(trace: &ParsedTrace) -> BTreeMap<String, KernelAgg> {
    let mut out: BTreeMap<String, KernelAgg> = BTreeMap::new();
    for events in trace.ranks.values() {
        for (label, a) in aggregate_kernels(events) {
            let e = out.entry(label).or_default();
            e.launches += a.launches;
            e.items += a.items;
            e.flops += a.flops;
            e.bytes_read += a.bytes_read;
            e.bytes_written += a.bytes_written;
            e.wall_us += a.wall_us;
            e.gangs_max = e.gangs_max.max(a.gangs_max);
            e.lanes_max = e.lanes_max.max(a.lanes_max);
        }
    }
    out
}

/// Last-sampled `threads` counter per rank (the worker count each rank's
/// context scheduled kernels onto), if any rank emitted one.
fn threads_per_rank(trace: &ParsedTrace) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for (rank, events) in &trace.ranks {
        for e in events {
            if e.ph == 'C' && e.name == "threads" {
                if let Some(v) = e.args.get("threads").and_then(|v| v.as_f64()) {
                    out.insert(*rank, v as u64);
                }
            }
        }
    }
    out
}

/// Scheduler view: rendered when the trace came from an ensemble run
/// (`mfc-serve` / `mfc-sched`) — timeline 0 carries the scheduler's
/// queue-depth / occupancy counters and resize instants, and each job's
/// timeline carries a `job` span with admit/cancel/deadline/failure
/// instants. Returns `None` for ordinary single-run traces.
fn sched_view(trace: &ParsedTrace) -> Option<String> {
    let mut max_queue: Option<f64> = None;
    let mut occupancy: Vec<f64> = Vec::new();
    let mut busy_max = 0.0f64;
    let mut resize_instants = 0u64;
    let mut connects = 0u64;
    let mut disconnects = 0u64;
    let mut drains = 0u64;
    if let Some(events) = trace.ranks.get(&0) {
        for e in events {
            let val = |n: &str| e.args.get(n).and_then(|v| v.as_f64());
            match (e.ph, e.name.as_str()) {
                ('C', "queue_depth") => {
                    if let Some(v) = val("queue_depth") {
                        max_queue = Some(max_queue.unwrap_or(0.0).max(v));
                    }
                }
                ('C', "running_jobs") => occupancy.extend(val("running_jobs")),
                ('C', "busy_workers") => {
                    if let Some(v) = val("busy_workers") {
                        busy_max = busy_max.max(v);
                    }
                }
                ('i', "resize") => resize_instants += 1,
                ('i', "client_connect") => connects += 1,
                ('i', "client_disconnect") | ('i', "client_disconnect_midframe") => {
                    disconnects += 1
                }
                ('i', "drain") | ('i', "shutdown") => drains += 1,
                _ => {}
            }
        }
    }

    struct JobRow {
        rank: u64,
        wall_us: f64,
        kernels: u64,
        share: u64,
        resizes: u64,
        outcome: &'static str,
    }
    let mut rows: Vec<JobRow> = Vec::new();
    for (rank, events) in &trace.ranks {
        let mut open: Option<f64> = None;
        let mut wall_us = 0.0f64;
        let mut seen_job = false;
        let mut kernels = 0u64;
        let mut thread_samples = 0u64;
        let mut share = 0u64;
        let mut outcome: &'static str = "done";
        for e in events {
            match (e.ph, e.name.as_str()) {
                ('B', "job") => {
                    seen_job = true;
                    open = Some(e.ts_us);
                }
                ('E', "job") => {
                    if let Some(t0) = open.take() {
                        wall_us += e.ts_us - t0;
                    }
                }
                ('X', _) if e.cat == "kernel" => kernels += 1,
                ('C', "threads") => {
                    if let Some(v) = e.args.get("threads").and_then(|v| v.as_f64()) {
                        thread_samples += 1;
                        share = v as u64;
                    }
                }
                ('i', "cancel") => outcome = "cancelled",
                ('i', "deadline") => outcome = "timed_out",
                ('i', "job_failed") => outcome = "failed",
                _ => {}
            }
        }
        if seen_job {
            rows.push(JobRow {
                rank: *rank,
                wall_us,
                kernels,
                share,
                resizes: thread_samples.saturating_sub(1),
                outcome,
            });
        }
    }
    if rows.is_empty() && max_queue.is_none() && occupancy.is_empty() {
        return None;
    }

    let mut out = String::new();
    let _ = writeln!(out, "\nscheduler view (ensemble run):");
    if let Some(q) = max_queue {
        let mean_occ = if occupancy.is_empty() {
            0.0
        } else {
            occupancy.iter().sum::<f64>() / occupancy.len() as f64
        };
        let _ = writeln!(
            out,
            "  queue depth max {q:.0}, mean running jobs {mean_occ:.2}, \
             busy workers max {busy_max:.0}, pool resizes {resize_instants}"
        );
    }
    if connects > 0 || disconnects > 0 {
        let _ = writeln!(
            out,
            "  daemon clients — {connects} connect(s), {disconnects} disconnect(s), \
             {drains} drain/shutdown command(s)"
        );
    }
    let _ = writeln!(
        out,
        "  {:>8} {:>12} {:>9} {:>11} {:>8} {:>10}",
        "timeline", "job ms", "kernels", "final share", "resizes", "outcome"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:>8} {:>12.3} {:>9} {:>11} {:>8} {:>10}",
            r.rank,
            r.wall_us / 1e3,
            r.kernels,
            r.share,
            r.resizes,
            r.outcome
        );
    }
    Some(out)
}

/// Render the full report: per-kernel aggregate table (sorted by wall
/// time), ledger reconciliation verdict, the per-rank comm/compute
/// split, and — for ensemble traces — the scheduler view.
pub fn render(trace: &ParsedTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mfc-trace report — {} rank(s)", trace.ranks.len());
    let threads = threads_per_rank(trace);
    if !threads.is_empty() {
        let per_rank: Vec<String> = threads
            .iter()
            .map(|(rank, n)| format!("rank {rank}: {n}"))
            .collect();
        let _ = writeln!(out, "worker threads — {}", per_rank.join(", "));
    }

    let totals = job_totals(trace);
    let mut rows: Vec<(&String, &KernelAgg)> = totals.iter().collect();
    rows.sort_by(|a, b| b.1.wall_us.total_cmp(&a.1.wall_us));
    let total_wall: f64 = rows.iter().map(|(_, a)| a.wall_us).sum();
    let _ = writeln!(out, "\nper-kernel aggregate (all ranks):");
    let _ = writeln!(
        out,
        "  {:<26} {:>9} {:>14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>7}",
        "kernel", "launches", "items", "gangs", "lanes", "flops", "read", "written", "wall%"
    );
    for (label, a) in &rows {
        let _ = writeln!(
            out,
            "  {:<26} {:>9} {:>14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>6.1}%",
            label,
            a.launches,
            a.items,
            a.gangs_max,
            a.lanes_max,
            format!("{:.3e}", a.flops),
            fmt_bytes(a.bytes_read),
            fmt_bytes(a.bytes_written),
            if total_wall > 0.0 {
                100.0 * a.wall_us / total_wall
            } else {
                0.0
            }
        );
    }

    let _ = writeln!(out, "\nledger cross-check:");
    match reconcile_trace(trace) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "  OK — traced per-kernel totals match the analytic ledger exactly"
            );
        }
        Err(errs) => {
            for e in &errs {
                let _ = writeln!(out, "  MISMATCH {e}");
            }
        }
    }

    let _ = writeln!(out, "\nper-rank comm/compute split (leaf events):");
    let _ = writeln!(
        out,
        "  {:>4} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "rank", "kernel ms", "comm ms", "io ms", "extent ms", "comm%"
    );
    for s in splits(trace) {
        let _ = writeln!(
            out,
            "  {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>6.1}%",
            s.rank,
            s.kernel_us / 1e3,
            s.comm_us / 1e3,
            s.io_us / 1e3,
            s.extent_us / 1e3,
            100.0 * s.comm_fraction()
        );
    }

    if let Some(view) = sched_view(trace) {
        out.push_str(&view);
    }

    for (rank, n) in &trace.dropped {
        if *n > 0 {
            let _ = writeln!(
                out,
                "\nwarning: rank {rank} ring dropped {n} event(s); stream truncated"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export_to_string, parse_str};
    use crate::event::{Category, CommOp, LedgerRow};
    use crate::tracer::Tracer;
    use std::time::{Duration, Instant};

    #[test]
    fn report_contains_table_verdict_and_split() {
        let tracer = Tracer::new();
        for rank in 0..2 {
            let h = tracer.handle(rank);
            let _s = h.span("step", Category::Phase);
            h.kernel(
                "weno_x",
                50,
                125.0,
                400.0,
                80.0,
                Instant::now(),
                Duration::from_micros(10),
            );
            h.comm(CommOp::Recv, 1 - rank, 256, Instant::now());
            h.attach_ledger(vec![LedgerRow {
                label: "weno_x".into(),
                launches: 1,
                items: 50,
                flops: 125.0,
                bytes_read: 400.0,
                bytes_written: 80.0,
                wall_ns: 10_000,
            }]);
        }
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let text = render(&parsed);
        assert!(text.contains("weno_x"));
        assert!(text.contains("OK — traced per-kernel totals match"));
        assert!(text.contains("comm/compute split"));
        assert!(text.contains("rank"));
    }

    #[test]
    fn sched_view_counts_daemon_clients() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.counter("queue_depth", 1.0);
        h.instant("client_connect", Category::Phase);
        h.instant("client_connect", Category::Phase);
        h.instant("client_disconnect", Category::Phase);
        h.instant("client_disconnect_midframe", Category::Phase);
        h.instant("drain", Category::Phase);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let text = render(&parsed);
        assert!(text.contains("2 connect(s)"), "{text}");
        assert!(text.contains("2 disconnect(s)"), "{text}");
        assert!(text.contains("1 drain/shutdown command(s)"), "{text}");
    }

    #[test]
    fn report_flags_mismatches() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.kernel(
            "k",
            1,
            1.0,
            1.0,
            1.0,
            Instant::now(),
            Duration::from_nanos(5),
        );
        h.attach_ledger(vec![LedgerRow {
            label: "k".into(),
            launches: 1,
            items: 1,
            flops: 2.0,
            bytes_read: 1.0,
            bytes_written: 1.0,
            wall_ns: 5,
        }]);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        assert!(render(&parsed).contains("MISMATCH"));
    }
}
