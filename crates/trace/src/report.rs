//! Human-readable rendering of a parsed trace: the profile summary a
//! `nsys stats` / `rocprof --stats` run would print.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::aggregate::{aggregate_kernels, reconcile_trace, splits, KernelAgg};
use crate::chrome::ParsedTrace;

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.3} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.3} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.3} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Merge per-rank kernel aggregates into job-wide totals per label.
fn job_totals(trace: &ParsedTrace) -> BTreeMap<String, KernelAgg> {
    let mut out: BTreeMap<String, KernelAgg> = BTreeMap::new();
    for events in trace.ranks.values() {
        for (label, a) in aggregate_kernels(events) {
            let e = out.entry(label).or_default();
            e.launches += a.launches;
            e.items += a.items;
            e.flops += a.flops;
            e.bytes_read += a.bytes_read;
            e.bytes_written += a.bytes_written;
            e.wall_us += a.wall_us;
            e.gangs_max = e.gangs_max.max(a.gangs_max);
            e.lanes_max = e.lanes_max.max(a.lanes_max);
        }
    }
    out
}

/// Last-sampled `threads` counter per rank (the worker count each rank's
/// context scheduled kernels onto), if any rank emitted one.
fn threads_per_rank(trace: &ParsedTrace) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for (rank, events) in &trace.ranks {
        for e in events {
            if e.ph == 'C' && e.name == "threads" {
                if let Some(v) = e.args.get("threads").and_then(|v| v.as_f64()) {
                    out.insert(*rank, v as u64);
                }
            }
        }
    }
    out
}

/// Render the full report: per-kernel aggregate table (sorted by wall
/// time), ledger reconciliation verdict, and the per-rank comm/compute
/// split.
pub fn render(trace: &ParsedTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mfc-trace report — {} rank(s)", trace.ranks.len());
    let threads = threads_per_rank(trace);
    if !threads.is_empty() {
        let per_rank: Vec<String> = threads
            .iter()
            .map(|(rank, n)| format!("rank {rank}: {n}"))
            .collect();
        let _ = writeln!(out, "worker threads — {}", per_rank.join(", "));
    }

    let totals = job_totals(trace);
    let mut rows: Vec<(&String, &KernelAgg)> = totals.iter().collect();
    rows.sort_by(|a, b| b.1.wall_us.partial_cmp(&a.1.wall_us).unwrap());
    let total_wall: f64 = rows.iter().map(|(_, a)| a.wall_us).sum();
    let _ = writeln!(out, "\nper-kernel aggregate (all ranks):");
    let _ = writeln!(
        out,
        "  {:<26} {:>9} {:>14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>7}",
        "kernel", "launches", "items", "gangs", "lanes", "flops", "read", "written", "wall%"
    );
    for (label, a) in &rows {
        let _ = writeln!(
            out,
            "  {:<26} {:>9} {:>14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>6.1}%",
            label,
            a.launches,
            a.items,
            a.gangs_max,
            a.lanes_max,
            format!("{:.3e}", a.flops),
            fmt_bytes(a.bytes_read),
            fmt_bytes(a.bytes_written),
            if total_wall > 0.0 {
                100.0 * a.wall_us / total_wall
            } else {
                0.0
            }
        );
    }

    let _ = writeln!(out, "\nledger cross-check:");
    match reconcile_trace(trace) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "  OK — traced per-kernel totals match the analytic ledger exactly"
            );
        }
        Err(errs) => {
            for e in &errs {
                let _ = writeln!(out, "  MISMATCH {e}");
            }
        }
    }

    let _ = writeln!(out, "\nper-rank comm/compute split (leaf events):");
    let _ = writeln!(
        out,
        "  {:>4} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "rank", "kernel ms", "comm ms", "io ms", "extent ms", "comm%"
    );
    for s in splits(trace) {
        let _ = writeln!(
            out,
            "  {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>6.1}%",
            s.rank,
            s.kernel_us / 1e3,
            s.comm_us / 1e3,
            s.io_us / 1e3,
            s.extent_us / 1e3,
            100.0 * s.comm_fraction()
        );
    }

    for (rank, n) in &trace.dropped {
        if *n > 0 {
            let _ = writeln!(
                out,
                "\nwarning: rank {rank} ring dropped {n} event(s); stream truncated"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export_to_string, parse_str};
    use crate::event::{Category, CommOp, LedgerRow};
    use crate::tracer::Tracer;
    use std::time::{Duration, Instant};

    #[test]
    fn report_contains_table_verdict_and_split() {
        let tracer = Tracer::new();
        for rank in 0..2 {
            let h = tracer.handle(rank);
            let _s = h.span("step", Category::Phase);
            h.kernel(
                "weno_x",
                50,
                125.0,
                400.0,
                80.0,
                Instant::now(),
                Duration::from_micros(10),
            );
            h.comm(CommOp::Recv, 1 - rank, 256, Instant::now());
            h.attach_ledger(vec![LedgerRow {
                label: "weno_x".into(),
                launches: 1,
                items: 50,
                flops: 125.0,
                bytes_read: 400.0,
                bytes_written: 80.0,
                wall_ns: 10_000,
            }]);
        }
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let text = render(&parsed);
        assert!(text.contains("weno_x"));
        assert!(text.contains("OK — traced per-kernel totals match"));
        assert!(text.contains("comm/compute split"));
        assert!(text.contains("rank"));
    }

    #[test]
    fn report_flags_mismatches() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.kernel(
            "k",
            1,
            1.0,
            1.0,
            1.0,
            Instant::now(),
            Duration::from_nanos(5),
        );
        h.attach_ledger(vec![LedgerRow {
            label: "k".into(),
            launches: 1,
            items: 1,
            flops: 2.0,
            bytes_read: 1.0,
            bytes_written: 1.0,
            wall_ns: 5,
        }]);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        assert!(render(&parsed).contains("MISMATCH"));
    }
}
