//! The tracer core: one epoch clock, one ring-buffered event stream per
//! rank, RAII span guards.
//!
//! Each simulated rank runs on its own thread and owns exactly one
//! [`TraceHandle`], so the handle's span stack is effectively the
//! thread-local stack of the rank — a `Mutex` guards it only so handles can
//! be shared between the rank's `Context` and `Comm` without unsafe code,
//! and that lock is uncontended on the hot path.
//!
//! Overhead discipline: instrumented call sites hold an
//! `Option<Arc<TraceHandle>>` and the disabled path is a single `None`
//! check (bench-gated by `bench_snapshot`). The enabled path appends one
//! fixed-size [`Event`] to a bounded `VecDeque`; when the ring is full the
//! oldest event is dropped and counted, never blocking the solver.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::{Category, CommOp, Event, EventKind, LedgerRow};

/// Default per-rank ring capacity (events). At ~100 events per solver step
/// this holds runs of ~10k steps before the oldest events rotate out.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Everything a traced run captured for one rank, in emission order.
#[derive(Debug, Clone)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<Event>,
    /// Events lost to ring-buffer rotation (0 means the stream is complete
    /// and per-label aggregation can reconcile with the ledger exactly).
    pub dropped: u64,
    /// The rank's analytic kernel-ledger snapshot, attached at run end.
    pub ledger: Vec<LedgerRow>,
}

/// Factory and registry for per-rank trace handles, sharing one epoch so
/// all rank timelines live on a common clock.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    ranks: Mutex<BTreeMap<usize, Arc<TraceHandle>>>,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer whose per-rank rings hold `capacity` events each.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(16),
            ranks: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get (or create) the handle for `rank`.
    pub fn handle(&self, rank: usize) -> Arc<TraceHandle> {
        let mut ranks = self.ranks.lock().unwrap();
        Arc::clone(ranks.entry(rank).or_insert_with(|| {
            Arc::new(TraceHandle {
                rank,
                epoch: self.epoch,
                capacity: self.capacity,
                inner: Mutex::new(HandleInner::default()),
            })
        }))
    }

    /// Snapshot every rank's captured stream, sorted by rank.
    pub fn snapshot(&self) -> Vec<RankTrace> {
        let ranks = self.ranks.lock().unwrap();
        ranks.values().map(|h| h.snapshot()).collect()
    }

    /// Ranks that have emitted at least one handle, sorted.
    pub fn rank_ids(&self) -> Vec<usize> {
        self.ranks.lock().unwrap().keys().copied().collect()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[derive(Debug, Default)]
struct HandleInner {
    events: VecDeque<Event>,
    dropped: u64,
    /// Open-span stack; `end` pops and checks LIFO discipline.
    stack: Vec<&'static str>,
    next_seq: u64,
    ledger: Vec<LedgerRow>,
}

/// One rank's recording endpoint. Cheap to clone via `Arc`; every method
/// takes `&self`.
#[derive(Debug)]
pub struct TraceHandle {
    rank: usize,
    epoch: Instant,
    capacity: usize,
    inner: Mutex<HandleInner>,
}

impl TraceHandle {
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64
    }

    fn push(&self, inner: &mut HandleInner, ts_ns: u64, dur_ns: u64, kind: EventKind) {
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(Event {
            seq,
            ts_ns,
            dur_ns,
            kind,
        });
    }

    /// Open a span. Prefer [`TraceHandle::span`] for RAII pairing.
    pub fn begin(&self, name: &'static str, cat: Category) {
        self.begin_bytes(name, cat, 0)
    }

    /// Open a span carrying a payload size (collectives, I/O waves).
    pub fn begin_bytes(&self, name: &'static str, cat: Category, bytes: u64) {
        let ts = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        inner.stack.push(name);
        self.push(&mut inner, ts, 0, EventKind::Begin { name, cat, bytes });
    }

    /// Close the innermost span, which must be `name` (LIFO discipline —
    /// violations indicate an instrumentation bug and panic in debug
    /// builds, while release builds record the event and continue).
    pub fn end(&self, name: &'static str) {
        let ts = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let top = inner.stack.pop();
        debug_assert_eq!(top, Some(name), "unbalanced trace span");
        self.push(&mut inner, ts, 0, EventKind::End { name });
    }

    /// RAII span: closes on drop.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(self: &Arc<Self>, name: &'static str, cat: Category) -> SpanGuard {
        self.begin(name, cat);
        SpanGuard {
            handle: Arc::clone(self),
            name,
        }
    }

    /// RAII span carrying a payload size.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_bytes(
        self: &Arc<Self>,
        name: &'static str,
        cat: Category,
        bytes: u64,
    ) -> SpanGuard {
        self.begin_bytes(name, cat, bytes);
        SpanGuard {
            handle: Arc::clone(self),
            name,
        }
    }

    /// Record a kernel launch as a complete event. The float arguments are
    /// the per-launch products the ledger accumulates (`*_per_item * items`),
    /// passed through verbatim so trace aggregation reconciles bitwise.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel(
        &self,
        label: &'static str,
        items: u64,
        flops: f64,
        bytes_read: f64,
        bytes_written: f64,
        start: Instant,
        wall: Duration,
    ) {
        self.kernel_gangs(
            label,
            items,
            1,
            flops,
            bytes_read,
            bytes_written,
            start,
            wall,
        );
    }

    /// [`TraceHandle::kernel`] with the gang count the launch actually used
    /// (1 = serial). Gangs annotate the event; the accounted totals are
    /// whole-launch values either way.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel_gangs(
        &self,
        label: &'static str,
        items: u64,
        gangs: u32,
        flops: f64,
        bytes_read: f64,
        bytes_written: f64,
        start: Instant,
        wall: Duration,
    ) {
        self.kernel_vec(
            label,
            items,
            gangs,
            1,
            flops,
            bytes_read,
            bytes_written,
            start,
            wall,
        );
    }

    /// [`TraceHandle::kernel_gangs`] with the lane width the launch executed
    /// at (1 = scalar). Like gangs, lanes annotate the event; the accounted
    /// totals stay whole-launch per-element values.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel_vec(
        &self,
        label: &'static str,
        items: u64,
        gangs: u32,
        lanes: u32,
        flops: f64,
        bytes_read: f64,
        bytes_written: f64,
        start: Instant,
        wall: Duration,
    ) {
        let ts = self.ns_since_epoch(start);
        let mut inner = self.inner.lock().unwrap();
        self.push(
            &mut inner,
            ts,
            wall.as_nanos() as u64,
            EventKind::Kernel {
                label,
                items,
                gangs,
                lanes,
                flops,
                bytes_read,
                bytes_written,
            },
        );
    }

    /// Record a leaf point-to-point operation started at `start` and
    /// finishing now (duration = blocked-wait plus copy time).
    pub fn comm(&self, op: CommOp, peer: usize, bytes: u64, start: Instant) {
        let ts = self.ns_since_epoch(start);
        let dur = start.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        self.push(&mut inner, ts, dur, EventKind::Comm { op, peer, bytes });
    }

    /// Record a leaf file-I/O operation started at `start`.
    pub fn io(&self, name: &'static str, bytes: u64, start: Instant) {
        let ts = self.ns_since_epoch(start);
        let dur = start.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        self.push(&mut inner, ts, dur, EventKind::Io { name, bytes });
    }

    /// Sample a scalar counter (rendered as a counter track).
    pub fn counter(&self, name: &'static str, value: f64) {
        let ts = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        self.push(&mut inner, ts, 0, EventKind::Counter { name, value });
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &'static str, cat: Category) {
        let ts = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        self.push(&mut inner, ts, 0, EventKind::Instant { name, cat });
    }

    /// Attach the rank's analytic ledger snapshot (replacing any previous
    /// attachment) so exports can cross-check without the live `Ledger`.
    pub fn attach_ledger(&self, rows: Vec<LedgerRow>) {
        self.inner.lock().unwrap().ledger = rows;
    }

    /// Events lost to ring rotation so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Current open-span depth (0 when the timeline is quiescent).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().stack.len()
    }

    /// Copy out everything captured so far.
    pub fn snapshot(&self) -> RankTrace {
        let inner = self.inner.lock().unwrap();
        RankTrace {
            rank: self.rank,
            events: inner.events.iter().cloned().collect(),
            dropped: inner.dropped,
            ledger: inner.ledger.clone(),
        }
    }
}

/// Closes its span when dropped.
pub struct SpanGuard {
    handle: Arc<TraceHandle>,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.handle.end(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_balance() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        {
            let _outer = h.span("step", Category::Phase);
            {
                let _inner = h.span("rk_stage", Category::Phase);
                assert_eq!(h.depth(), 2);
            }
            assert_eq!(h.depth(), 1);
        }
        assert_eq!(h.depth(), 0);
        let t = h.snapshot();
        assert_eq!(t.events.len(), 4);
        assert!(matches!(
            t.events[0].kind,
            EventKind::Begin { name: "step", .. }
        ));
        assert!(matches!(t.events[3].kind, EventKind::End { name: "step" }));
    }

    #[test]
    fn seq_ids_are_deterministic_emission_order() {
        let tracer = Tracer::new();
        let h = tracer.handle(3);
        h.instant("a", Category::Recovery);
        h.counter("dt", 0.5);
        h.instant("b", Category::Recovery);
        let t = h.snapshot();
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(t.rank, 3);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(16);
        let h = tracer.handle(0);
        for _ in 0..20 {
            h.instant("x", Category::Phase);
        }
        let t = h.snapshot();
        assert_eq!(t.events.len(), 16);
        assert_eq!(t.dropped, 4);
        // Oldest rotated out: first surviving seq is 4.
        assert_eq!(t.events[0].seq, 4);
    }

    #[test]
    fn handles_are_shared_per_rank() {
        let tracer = Tracer::new();
        let a = tracer.handle(1);
        let b = tracer.handle(1);
        a.instant("from_a", Category::Phase);
        assert_eq!(b.snapshot().events.len(), 1);
        assert_eq!(tracer.rank_ids(), vec![1]);
    }

    #[test]
    fn timestamps_are_monotone_in_emission_order() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        for _ in 0..100 {
            let _s = h.span("s", Category::Phase);
            h.instant("i", Category::Phase);
        }
        let t = h.snapshot();
        for w in t.events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn kernel_event_preserves_exact_products() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        let flops = 0.1 * 12345.0_f64;
        h.kernel(
            "k",
            12345,
            flops,
            1.5,
            2.5,
            Instant::now(),
            Duration::from_micros(3),
        );
        let t = h.snapshot();
        match t.events[0].kind {
            EventKind::Kernel {
                label,
                items,
                flops: f,
                ..
            } => {
                assert_eq!(label, "k");
                assert_eq!(items, 12345);
                assert_eq!(f.to_bits(), flops.to_bits());
            }
            _ => panic!("expected kernel event"),
        }
    }
}
