//! chrome://tracing ("Trace Event Format") export and re-import.
//!
//! The export uses the JSON *object* form: `traceEvents` holds the per-rank
//! streams (pid 0, tid = rank, so Perfetto shows one timeline lane per
//! rank) and `metadata` embeds each rank's analytic-ledger snapshot plus
//! ring-drop counts, making the file self-contained for
//! `mfc-trace-report`'s ledger cross-check.
//!
//! Timestamps are microsecond doubles as the format requires; the float
//! kernel attributes (`flops`, `bytes_read`, `bytes_written`) round-trip
//! exactly because the JSON layer prints floats shortest-round-trip
//! (upstream's `float_roundtrip`).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde_json::{json, Map, Value};

use crate::event::{EventKind, LedgerRow};
use crate::tracer::RankTrace;

/// Process id used for every rank lane (one simulated job = one process).
const PID: u64 = 0;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render rank streams to a chrome-trace JSON value.
pub fn export(traces: &[RankTrace]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    events.push(json!({
        "name": "process_name", "ph": "M", "pid": PID, "tid": 0u64,
        "args": json!({"name": "mfc"})
    }));
    for t in traces {
        events.push(json!({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": t.rank as u64,
            "args": json!({"name": format!("rank {}", t.rank)})
        }));
    }
    for t in traces {
        let tid = t.rank as u64;
        for e in &t.events {
            events.push(render_event(tid, e));
        }
    }
    let mut ledgers = Map::new();
    let mut dropped = Map::new();
    for t in traces {
        ledgers.insert(t.rank.to_string(), serde_json::to_value(&t.ledger));
        dropped.insert(t.rank.to_string(), json!(t.dropped));
    }
    json!({
        "traceEvents": events,
        "metadata": json!({
            "tool": "mfc-trace",
            "ranks": traces.len() as u64,
            "ledger": Value::Object(ledgers),
            "dropped": Value::Object(dropped)
        })
    })
}

fn render_event(tid: u64, e: &crate::event::Event) -> Value {
    let ts = us(e.ts_ns);
    match &e.kind {
        EventKind::Begin { name, cat, bytes } => {
            let mut args = Map::new();
            args.insert("seq", json!(e.seq));
            if *bytes > 0 {
                args.insert("bytes", json!(*bytes));
            }
            json!({
                "name": *name, "cat": cat.as_str(), "ph": "B",
                "ts": ts, "pid": PID, "tid": tid, "args": Value::Object(args)
            })
        }
        EventKind::End { name } => json!({
            "name": *name, "ph": "E", "ts": ts, "pid": PID, "tid": tid
        }),
        EventKind::Kernel {
            label,
            items,
            gangs,
            lanes,
            flops,
            bytes_read,
            bytes_written,
        } => json!({
            "name": *label, "cat": "kernel", "ph": "X",
            "ts": ts, "dur": us(e.dur_ns), "pid": PID, "tid": tid,
            "args": json!({
                "seq": e.seq, "items": *items, "gangs": *gangs, "lanes": *lanes,
                "flops": *flops,
                "bytes_read": *bytes_read, "bytes_written": *bytes_written
            })
        }),
        EventKind::Comm { op, peer, bytes } => json!({
            "name": op.as_str(), "cat": "comm", "ph": "X",
            "ts": ts, "dur": us(e.dur_ns), "pid": PID, "tid": tid,
            "args": json!({"seq": e.seq, "peer": *peer as u64, "bytes": *bytes})
        }),
        EventKind::Io { name, bytes } => json!({
            "name": *name, "cat": "io", "ph": "X",
            "ts": ts, "dur": us(e.dur_ns), "pid": PID, "tid": tid,
            "args": json!({"seq": e.seq, "bytes": *bytes})
        }),
        EventKind::Counter { name, value } => {
            let mut args = Map::new();
            args.insert(name.to_string(), json!(*value));
            json!({
                "name": *name, "ph": "C", "ts": ts, "pid": PID, "tid": tid,
                "args": Value::Object(args)
            })
        }
        EventKind::Instant { name, cat } => json!({
            "name": *name, "cat": cat.as_str(), "ph": "i", "s": "t",
            "ts": ts, "pid": PID, "tid": tid,
            "args": json!({"seq": e.seq})
        }),
    }
}

/// Serialize rank streams to a chrome-trace JSON string.
pub fn export_to_string(traces: &[RankTrace]) -> String {
    serde_json::to_string(&export(traces)).expect("trace serializes")
}

/// Write rank streams to `path` as chrome-trace JSON.
pub fn write_file(path: &Path, traces: &[RankTrace]) -> io::Result<()> {
    std::fs::write(path, export_to_string(traces))
}

/// One event as re-read from a chrome-trace file. Events keep the file's
/// array order per rank, which is the rank's emission order.
#[derive(Debug, Clone)]
pub struct ParsedEvent {
    pub name: String,
    pub cat: String,
    pub ph: char,
    pub ts_us: f64,
    pub dur_us: f64,
    pub args: Map,
}

/// A chrome-trace file decoded back into per-rank streams plus the
/// embedded metadata.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// Per-rank event streams in file (= emission) order; metadata ("M")
    /// records are skipped.
    pub ranks: BTreeMap<u64, Vec<ParsedEvent>>,
    /// Embedded analytic-ledger snapshot per rank.
    pub ledgers: BTreeMap<u64, Vec<LedgerRow>>,
    /// Ring-drop count per rank (non-zero streams are incomplete).
    pub dropped: BTreeMap<u64, u64>,
}

/// Integer attributes every `cat: "kernel"` X event must carry.
const KERNEL_COUNT_ARGS: &[&str] = &["items", "gangs", "lanes"];
/// Float attributes every `cat: "kernel"` X event must carry.
const KERNEL_FLOAT_ARGS: &[&str] = &["flops", "bytes_read", "bytes_written"];

/// A kernel event with missing or non-numeric analytic attributes is a
/// malformed document, not a zero: the roofline/ledger cross-checks
/// downstream would otherwise aggregate garbage silently (and lookups
/// that assume the args must never be able to panic on foreign files).
fn check_kernel_args(args: &Map) -> Result<(), String> {
    for key in KERNEL_COUNT_ARGS {
        if args.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("kernel event missing numeric arg '{key}'"));
        }
    }
    for key in KERNEL_FLOAT_ARGS {
        if args.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("kernel event missing numeric arg '{key}'"));
        }
    }
    Ok(())
}

/// Decode a chrome-trace JSON string produced by [`export`].
pub fn parse_str(s: &str) -> Result<ParsedTrace, String> {
    let root: Value = serde_json::from_str(s).map_err(|e| format!("not JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut out = ParsedTrace::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let parsed = ParsedEvent {
            name: ev
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event {i}: missing name"))?
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            ph: ph.chars().next().unwrap_or('?'),
            ts_us: ev
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?,
            dur_us: ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0),
            args: ev
                .get("args")
                .and_then(Value::as_object)
                .cloned()
                .unwrap_or_default(),
        };
        if parsed.ph == 'X' && parsed.cat == "kernel" {
            check_kernel_args(&parsed.args).map_err(|e| format!("event {i}: {e}"))?;
        }
        out.ranks.entry(tid).or_default().push(parsed);
    }
    if let Some(meta) = root.get("metadata") {
        if let Some(ledgers) = meta.get("ledger").and_then(Value::as_object) {
            for (rank, rows) in ledgers.iter() {
                let rank: u64 = rank.parse().map_err(|_| "non-numeric ledger rank key")?;
                let rows: Vec<LedgerRow> = serde_json::from_value(rows)
                    .map_err(|e| format!("rank {rank} ledger rows: {e}"))?;
                out.ledgers.insert(rank, rows);
            }
        }
        if let Some(dropped) = meta.get("dropped").and_then(Value::as_object) {
            for (rank, n) in dropped.iter() {
                let rank: u64 = rank.parse().map_err(|_| "non-numeric dropped rank key")?;
                out.dropped.insert(rank, n.as_u64().unwrap_or(0));
            }
        }
    }
    Ok(out)
}

/// Phases a conforming producer may emit.
const KNOWN_PH: &[&str] = &["B", "E", "X", "C", "i", "M"];

/// Structural schema check on a chrome-trace JSON document. Returns every
/// violation found (empty = valid).
pub fn validate_schema(root: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    let Some(events) = root.get("traceEvents") else {
        return vec!["missing traceEvents".into()];
    };
    let Some(events) = events.as_array() else {
        return vec!["traceEvents is not an array".into()];
    };
    for (i, ev) in events.iter().enumerate() {
        let Some(obj) = ev.as_object() else {
            errs.push(format!("event {i}: not an object"));
            continue;
        };
        let ph = match obj.get("ph").and_then(Value::as_str) {
            Some(p) => p,
            None => {
                errs.push(format!("event {i}: missing ph"));
                continue;
            }
        };
        if !KNOWN_PH.contains(&ph) {
            errs.push(format!("event {i}: unknown ph {ph:?}"));
        }
        if obj.get("name").and_then(Value::as_str).is_none() {
            errs.push(format!("event {i}: missing name"));
        }
        if ph != "M" {
            if obj.get("ts").and_then(Value::as_f64).is_none() {
                errs.push(format!("event {i}: missing ts"));
            }
            if obj.get("pid").and_then(Value::as_u64).is_none()
                || obj.get("tid").and_then(Value::as_u64).is_none()
            {
                errs.push(format!("event {i}: missing pid/tid"));
            }
        }
        if ph == "X" && obj.get("dur").and_then(Value::as_f64).is_none() {
            errs.push(format!("event {i}: X event missing dur"));
        }
        if ph == "X" && obj.get("cat").and_then(Value::as_str) == Some("kernel") {
            let args = obj.get("args").and_then(Value::as_object).cloned();
            if let Err(e) = check_kernel_args(&args.unwrap_or_default()) {
                errs.push(format!("event {i}: {e}"));
            }
        }
        if ph == "C"
            && obj
                .get("args")
                .and_then(Value::as_object)
                .map(|m| m.is_empty())
                .unwrap_or(true)
        {
            errs.push(format!("event {i}: counter missing args"));
        }
    }
    match root.get("metadata") {
        None => errs.push("missing metadata".into()),
        Some(meta) => {
            for key in ["ledger", "dropped"] {
                if meta.get(key).and_then(Value::as_object).is_none() {
                    errs.push(format!("metadata missing {key} object"));
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::tracer::Tracer;
    use std::time::{Duration, Instant};

    fn sample() -> Vec<RankTrace> {
        let tracer = Tracer::new();
        for rank in 0..2 {
            let h = tracer.handle(rank);
            let _step = h.span("step", Category::Phase);
            h.kernel(
                "weno_x",
                100,
                1.0 / 3.0,
                2.5,
                0.125,
                Instant::now(),
                Duration::from_micros(5),
            );
            h.comm(crate::event::CommOp::Recv, 1 - rank, 800, Instant::now());
            h.counter("dt", 1e-3);
            h.instant("retry", Category::Recovery);
            h.attach_ledger(vec![LedgerRow {
                label: "weno_x".into(),
                launches: 1,
                items: 100,
                flops: 1.0 / 3.0,
                bytes_read: 2.5,
                bytes_written: 0.125,
                wall_ns: 5000,
            }]);
        }
        tracer.snapshot()
    }

    #[test]
    fn export_passes_schema_validation() {
        let v = export(&sample());
        assert!(validate_schema(&v).is_empty(), "{:?}", validate_schema(&v));
    }

    #[test]
    fn export_parse_round_trip_is_exact() {
        let traces = sample();
        let s = export_to_string(&traces);
        let parsed = parse_str(&s).unwrap();
        assert_eq!(parsed.ranks.len(), 2);
        let r0 = &parsed.ranks[&0];
        let kernel = r0.iter().find(|e| e.cat == "kernel").unwrap();
        // float_roundtrip: the per-launch product survives JSON bitwise.
        let flops = kernel.args.get("flops").unwrap().as_f64().unwrap();
        assert_eq!(flops.to_bits(), (1.0_f64 / 3.0).to_bits());
        assert_eq!(parsed.ledgers[&0][0].label, "weno_x");
        assert_eq!(parsed.dropped[&0], 0);
    }

    #[test]
    fn schema_validation_flags_broken_documents() {
        assert!(!validate_schema(&json!({})).is_empty());
        let bad = json!({
            "traceEvents": json!([
                json!({"ph": "Q", "ts": 0.0, "pid": 0u64, "tid": 0u64})
            ]),
            "metadata": json!({"ledger": json!({}), "dropped": json!({})})
        });
        let errs = validate_schema(&bad);
        assert!(errs.iter().any(|e| e.contains("unknown ph")));
        assert!(errs.iter().any(|e| e.contains("missing name")));
    }

    #[test]
    fn kernel_event_with_bad_args_is_a_typed_parse_error() {
        // Regression: a well-formed chrome-trace document whose kernel
        // event lacks (or mistypes) the analytic args used to sail
        // through parsing, leaving downstream arg lookups to abort or
        // silently aggregate zeros. It must be a typed parse error and
        // a schema violation so `mfc-trace-report --validate` rejects.
        let doc = |args: Value| {
            json!({
                "traceEvents": json!([json!({
                    "name": "weno_x", "cat": "kernel", "ph": "X",
                    "ts": 0.0, "dur": 1.0, "pid": 0u64, "tid": 0u64,
                    "args": args
                })]),
                "metadata": json!({"ledger": json!({}), "dropped": json!({})})
            })
        };
        let missing = doc(json!({
            "seq": 0u64, "items": 10u64, "gangs": 1u64, "lanes": 1u64
        })); // no flops/bytes at all
        let non_numeric = doc(json!({
            "seq": 0u64, "items": 10u64, "gangs": 1u64, "lanes": 1u64,
            "flops": "lots", "bytes_read": 1.0, "bytes_written": 1.0
        }));
        for bad in [&missing, &non_numeric] {
            let text = serde_json::to_string(bad).unwrap();
            let err = parse_str(&text).unwrap_err();
            assert!(err.contains("kernel event missing numeric arg"), "{err}");
            let errs = validate_schema(bad);
            assert!(
                errs.iter().any(|e| e.contains("numeric arg")),
                "{errs:?}"
            );
        }
        // The exporter's own output still parses, so strictness cannot
        // reject a healthy trace.
        assert!(parse_str(&export_to_string(&sample())).is_ok());
    }

    #[test]
    fn parse_keeps_emission_order() {
        let s = export_to_string(&sample());
        let parsed = parse_str(&s).unwrap();
        let names: Vec<&str> = parsed.ranks[&1].iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["step", "weno_x", "recv", "dt", "retry", "step"]);
    }
}
