//! `mfc-trace` — the reproduction's NSight Systems / rocprof substitute.
//!
//! The paper's whole optimization story was profile-driven: timeline
//! traces exposed the 90%-of-runtime private-array kernel (§III-D) and
//! the comm/compute split behind the GPU-aware-MPI ablation (Fig. 4).
//! This crate provides the measured counterpart to `mfc-acc`'s analytic
//! ledger:
//!
//! * [`Tracer`] / [`TraceHandle`] — a hierarchical span tracer with one
//!   ring-buffered event stream per simulated rank, deterministic
//!   per-rank span ids, RAII [`SpanGuard`]s, counters and instants. The
//!   disabled path is a single `Option` check at each instrumented site
//!   (gated by `bench_snapshot`'s grind-regression check).
//! * [`chrome`] — chrome://tracing JSON export (per-rank timelines, one
//!   `tid` lane per rank, loadable in Perfetto) with each rank's
//!   analytic-ledger snapshot embedded in the file metadata, plus a
//!   parser and structural schema validator for CI smoke runs.
//! * [`aggregate`] — per-kernel totals from the traced stream, the
//!   *exact* (bitwise) reconciliation against the analytic ledger, and
//!   the measured per-rank comm-vs-compute split analogous to Fig. 4.
//! * [`nesting`] — well-nestedness validation of span streams (no
//!   orphaned or overlapping spans), proptest-driven from the solver.
//! * [`report`] — the text summary the `mfc-trace-report` binary prints.

pub mod aggregate;
pub mod chrome;
pub mod event;
pub mod nesting;
pub mod report;
pub mod tracer;

pub use aggregate::{reconcile_trace, splits, KernelAgg, RankSplit};
pub use event::{Category, CommOp, Event, EventKind, LedgerRow};
pub use tracer::{RankTrace, SpanGuard, TraceHandle, Tracer, DEFAULT_CAPACITY};
