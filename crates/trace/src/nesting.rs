//! Well-nestedness validation of span streams.
//!
//! A rank's timeline is well-nested when its `Begin`/`End` events form a
//! balanced LIFO bracket sequence and every complete ("X") event fits
//! strictly inside the innermost open span at its emission point. Both the
//! live event stream (nanosecond-exact) and a re-parsed chrome-trace file
//! (microsecond doubles, so containment uses a rounding tolerance) can be
//! checked; the proptest suite drives the live form across random domains
//! and both RHS modes.

use crate::chrome::{ParsedEvent, ParsedTrace};
use crate::event::{Event, EventKind};

/// Rounding slack for microsecond-double comparisons (µs). One ns is
/// 1e-3 µs; half-ulp effects of the ns→µs division stay far below this.
const US_EPS: f64 = 1e-3;

/// Check one rank's live event stream for well-nestedness. Returns the
/// first violation found.
pub fn check_events(events: &[Event]) -> Result<(), String> {
    // Stack of (name, begin_ts).
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    let mut last_ts = 0u64;
    for (i, e) in events.iter().enumerate() {
        if e.ts_ns < last_ts {
            return Err(format!(
                "event {i} ({:?}): ts {} goes backwards (prev {})",
                e.kind.name(),
                e.ts_ns,
                last_ts
            ));
        }
        last_ts = e.ts_ns;
        match &e.kind {
            EventKind::Begin { name, .. } => stack.push((name, e.ts_ns)),
            EventKind::End { name } => match stack.pop() {
                Some((open, begin_ts)) => {
                    if open != *name {
                        return Err(format!(
                            "event {i}: End({name}) closes open span {open} (overlap)"
                        ));
                    }
                    if e.ts_ns < begin_ts {
                        return Err(format!("event {i}: End({name}) before its Begin"));
                    }
                }
                None => return Err(format!("event {i}: orphan End({name})")),
            },
            EventKind::Kernel { .. } | EventKind::Comm { .. } | EventKind::Io { .. } => {
                // Leaf X event: must start inside the enclosing span (if
                // any); its end is bounded by the enclosing End because
                // the End is emitted later on the same monotone clock.
                if let Some((open, begin_ts)) = stack.last() {
                    if e.ts_ns < *begin_ts {
                        return Err(format!(
                            "event {i} ({}): starts before enclosing span {open}",
                            e.kind.name()
                        ));
                    }
                }
            }
            EventKind::Counter { .. } | EventKind::Instant { .. } => {}
        }
    }
    if let Some((open, _)) = stack.last() {
        return Err(format!("orphan span {open} never closed"));
    }
    Ok(())
}

/// Check one rank's re-parsed chrome-trace stream (file order = emission
/// order) for well-nestedness.
pub fn check_parsed(events: &[ParsedEvent]) -> Result<(), String> {
    let mut stack: Vec<(&str, f64)> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        if e.ts_us < last_ts - US_EPS {
            return Err(format!(
                "event {i} ({}): ts {} goes backwards (prev {})",
                e.name, e.ts_us, last_ts
            ));
        }
        last_ts = last_ts.max(e.ts_us);
        match e.ph {
            'B' => stack.push((e.name.as_str(), e.ts_us)),
            'E' => match stack.pop() {
                Some((open, begin_ts)) => {
                    if open != e.name {
                        return Err(format!(
                            "event {i}: E({}) closes open span {open} (overlap)",
                            e.name
                        ));
                    }
                    if e.ts_us < begin_ts - US_EPS {
                        return Err(format!("event {i}: E({}) before its B", e.name));
                    }
                }
                None => return Err(format!("event {i}: orphan E({})", e.name)),
            },
            'X' => {
                if let Some((open, begin_ts)) = stack.last() {
                    if e.ts_us < begin_ts - US_EPS {
                        return Err(format!(
                            "event {i} ({}): starts before enclosing span {open}",
                            e.name
                        ));
                    }
                }
            }
            'C' | 'i' => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if let Some((open, _)) = stack.last() {
        return Err(format!("orphan span {open} never closed"));
    }
    Ok(())
}

/// Check every rank of a parsed trace; returns per-rank violations.
pub fn check_trace(trace: &ParsedTrace) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    for (rank, events) in &trace.ranks {
        if let Err(e) = check_parsed(events) {
            errs.push(format!("rank {rank}: {e}"));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::tracer::Tracer;

    #[test]
    fn balanced_stream_passes() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        {
            let _a = h.span("a", Category::Phase);
            let _b = h.span("b", Category::Phase);
            h.instant("mark", Category::Recovery);
        }
        assert!(check_events(&h.snapshot().events).is_ok());
    }

    #[test]
    fn orphan_end_is_rejected() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.begin("a", Category::Phase);
        h.end("a");
        // Bypass the stack discipline debug_assert by crafting raw events.
        let mut events = h.snapshot().events;
        events.push(Event {
            seq: 99,
            ts_ns: events.last().unwrap().ts_ns + 1,
            dur_ns: 0,
            kind: EventKind::End { name: "ghost" },
        });
        assert!(check_events(&events).unwrap_err().contains("orphan End"));
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.begin("left_open", Category::Phase);
        let err = check_events(&h.snapshot().events).unwrap_err();
        assert!(err.contains("never closed"));
    }

    #[test]
    fn interleaved_spans_are_rejected() {
        let events = vec![
            Event {
                seq: 0,
                ts_ns: 0,
                dur_ns: 0,
                kind: EventKind::Begin {
                    name: "a",
                    cat: Category::Phase,
                    bytes: 0,
                },
            },
            Event {
                seq: 1,
                ts_ns: 1,
                dur_ns: 0,
                kind: EventKind::Begin {
                    name: "b",
                    cat: Category::Phase,
                    bytes: 0,
                },
            },
            Event {
                seq: 2,
                ts_ns: 2,
                dur_ns: 0,
                kind: EventKind::End { name: "a" },
            },
        ];
        assert!(check_events(&events).unwrap_err().contains("overlap"));
    }

    #[test]
    fn parsed_round_trip_passes() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        {
            let _s = h.span("step", Category::Phase);
            h.kernel(
                "k",
                1,
                1.0,
                8.0,
                8.0,
                std::time::Instant::now(),
                std::time::Duration::from_nanos(100),
            );
        }
        let s = crate::chrome::export_to_string(&tracer.snapshot());
        let parsed = crate::chrome::parse_str(&s).unwrap();
        assert!(check_trace(&parsed).is_ok());
    }
}
