//! `mfc-trace-report <trace.json>` — summarize and check a trace captured
//! with `mfc-run --trace`.

use mfc_trace::chrome;
use mfc_trace::nesting;

const USAGE: &str = "usage: mfc-trace-report <trace.json> [--validate] [--reconcile]";

const HELP: &str = "\
mfc-trace-report — summarize a chrome-trace file captured by mfc-run --trace

usage: mfc-trace-report <trace.json> [flags]

Prints the per-kernel aggregate table, the exact cross-check against the
embedded analytic kernel ledger, and the measured per-rank comm/compute
split (the reproduction's Fig. 4 counterpart).

flags:
  --help       print this help and exit
  --validate   additionally schema-validate the chrome-trace JSON and
               check every rank's span stream is well-nested; any
               violation exits non-zero
  --reconcile  exit non-zero unless every rank's traced per-kernel totals
               match its analytic ledger exactly

exit codes:
  0  success (all requested checks passed)
  1  validation or reconciliation failure
  2  usage error
  3  I/O or parse failure
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut validate = false;
    let mut reconcile = false;
    let mut path: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            "--validate" => validate = true,
            "--reconcile" => reconcile = true,
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("error: only one trace file may be given");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };

    let mut failed = false;
    if validate {
        let root: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {path} is not JSON: {e}");
                std::process::exit(3);
            }
        };
        let errs = chrome::validate_schema(&root);
        if errs.is_empty() {
            println!("schema: OK");
        } else {
            failed = true;
            for e in &errs {
                eprintln!("schema violation: {e}");
            }
        }
    }

    let parsed = match chrome::parse_str(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot parse {path}: {e}");
            std::process::exit(3);
        }
    };

    if validate {
        match nesting::check_trace(&parsed) {
            Ok(()) => println!("span nesting: OK"),
            Err(errs) => {
                failed = true;
                for e in &errs {
                    eprintln!("nesting violation: {e}");
                }
            }
        }
    }

    print!("{}", mfc_trace::report::render(&parsed));

    if reconcile {
        if let Err(errs) = mfc_trace::reconcile_trace(&parsed) {
            failed = true;
            for e in &errs {
                eprintln!("reconcile failure: {e}");
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
