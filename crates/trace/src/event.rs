//! The trace event model.
//!
//! Events are what the per-rank ring buffers hold: hierarchical span
//! begin/end pairs, complete ("X") events for kernel launches, point-to-point
//! communication and file I/O, plus counters and instants. All names are
//! `&'static str` so the hot path never allocates.

use serde::{Deserialize, Serialize};

/// What part of the stack a span or instant belongs to.
///
/// Categories are what the aggregation layer keys the comm-vs-compute
/// split on: `Kernel`, `Comm` and `Io` complete events are leaves (they
/// never contain other events), while `Phase`, `Collective` and
/// `Recovery` annotate the hierarchy around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Category {
    /// Solver step phase (dt selection, RK stage, halo exchange, ...).
    Phase,
    /// A `mfc-acc` kernel launch.
    Kernel,
    /// Point-to-point communication (leaf: send, blocked recv/wait).
    Comm,
    /// A collective wrapper (allreduce, gather, barrier, waitall, ...).
    Collective,
    /// Checkpoint and wave-throttled output I/O.
    Io,
    /// Health-watchdog / recovery-ladder activity.
    Recovery,
}

impl Category {
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Kernel => "kernel",
            Category::Comm => "comm",
            Category::Collective => "collective",
            Category::Io => "io",
            Category::Recovery => "recovery",
        }
    }

    pub fn parse(s: &str) -> Option<Category> {
        Some(match s {
            "phase" => Category::Phase,
            "kernel" => Category::Kernel,
            "comm" => Category::Comm,
            "collective" => Category::Collective,
            "io" => Category::Io,
            "recovery" => Category::Recovery,
            _ => return None,
        })
    }
}

/// Leaf point-to-point operation recorded as a complete event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CommOp {
    /// Message posted to a peer mailbox (duration = pack/post time).
    Send,
    /// Message received (duration = blocked-wait plus copy time).
    Recv,
    /// Completion wait on a posted receive (duration = blocked time).
    Wait,
}

impl CommOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            CommOp::Send => "send",
            CommOp::Recv => "recv",
            CommOp::Wait => "wait",
        }
    }
}

/// One trace event as held in a rank's ring buffer.
///
/// `seq` is the deterministic per-rank span/event id: ranks execute their
/// timelines deterministically, so the n-th event a rank emits is the same
/// event on every run of the same case. Timestamps are nanoseconds since
/// the owning [`crate::Tracer`]'s epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Deterministic per-rank sequence id (emission order).
    pub seq: u64,
    /// Start time, ns since the tracer epoch.
    pub ts_ns: u64,
    /// Duration in ns; zero for begin/end/counter/instant events.
    pub dur_ns: u64,
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Span opens. `bytes` carries a payload size for collective and I/O
    /// spans (zero means "not applicable").
    Begin {
        name: &'static str,
        cat: Category,
        bytes: u64,
    },
    /// Span closes (LIFO with respect to `Begin` on the same rank).
    End { name: &'static str },
    /// A kernel launch: the ledger's per-launch attributes verbatim, i.e.
    /// `flops = cost.flops_per_item * items as f64` exactly as
    /// `Ledger::record_launch` accumulates it — summing these per label in
    /// emission order reproduces the ledger totals bitwise.
    Kernel {
        label: &'static str,
        items: u64,
        /// How many worker gangs the launch was split across (1 for serial
        /// execution). Annotation only: items/flops/bytes are whole-launch
        /// totals regardless of the gang count.
        gangs: u32,
        /// Lane width the launch executed at (1 for scalar kernels).
        /// Annotation only, like `gangs`: FLOP/byte counts are
        /// per-element, so ledger reconciliation ignores it.
        lanes: u32,
        flops: f64,
        bytes_read: f64,
        bytes_written: f64,
    },
    /// A leaf point-to-point operation with payload size and blocked time.
    Comm { op: CommOp, peer: usize, bytes: u64 },
    /// A leaf file-I/O operation (checkpoint slab, output wave file).
    Io { name: &'static str, bytes: u64 },
    /// A sampled scalar (dt, retry depth, ...), rendered as a counter
    /// track by chrome://tracing.
    Counter { name: &'static str, value: f64 },
    /// A point-in-time marker (fault detected, ladder rung engaged, ...).
    Instant { name: &'static str, cat: Category },
}

impl EventKind {
    /// Display name (span/label/op name) of the event.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Begin { name, .. }
            | EventKind::End { name }
            | EventKind::Io { name, .. }
            | EventKind::Counter { name, .. }
            | EventKind::Instant { name, .. } => name,
            EventKind::Kernel { label, .. } => label,
            EventKind::Comm { op, .. } => op.as_str(),
        }
    }
}

/// One row of a rank's analytic kernel ledger, attached to the trace at
/// the end of a run so exporters can cross-check the measured aggregation
/// against the analytic totals without access to the live `Ledger`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRow {
    pub label: String,
    pub launches: u64,
    pub items: u64,
    pub flops: f64,
    pub bytes_read: f64,
    pub bytes_written: f64,
    /// Total wall time the ledger attributed to this kernel, in ns.
    pub wall_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_round_trips_through_str() {
        for c in [
            Category::Phase,
            Category::Kernel,
            Category::Comm,
            Category::Collective,
            Category::Io,
            Category::Recovery,
        ] {
            assert_eq!(Category::parse(c.as_str()), Some(c));
        }
        assert_eq!(Category::parse("bogus"), None);
    }

    #[test]
    fn event_kind_names() {
        assert_eq!(
            EventKind::Begin {
                name: "step",
                cat: Category::Phase,
                bytes: 0
            }
            .name(),
            "step"
        );
        assert_eq!(
            EventKind::Comm {
                op: CommOp::Recv,
                peer: 1,
                bytes: 64
            }
            .name(),
            "recv"
        );
    }
}
