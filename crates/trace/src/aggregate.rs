//! Aggregation of traced streams: per-kernel totals, the analytic-ledger
//! cross-check, and the measured per-rank comm-vs-compute split.
//!
//! Reconciliation is *exact*: kernel events carry the per-launch products
//! the ledger accumulates, in the ledger's accumulation order, so summing
//! them per label reproduces the ledger's floating-point totals bitwise
//! (and `float_roundtrip` preserves them through the JSON file). Any
//! mismatch therefore means lost events (ring rotation) or a genuine
//! instrumentation bug — never float noise.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::chrome::{ParsedEvent, ParsedTrace};
use crate::event::LedgerRow;

/// Per-label totals aggregated from one rank's kernel events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelAgg {
    pub launches: u64,
    pub items: u64,
    pub flops: f64,
    pub bytes_read: f64,
    pub bytes_written: f64,
    /// Measured wall time summed from event durations, µs. Compared
    /// loosely (the ledger clock is the same but rounds ns→µs here).
    pub wall_us: f64,
    /// Widest gang decomposition any launch of this label used (1 = every
    /// launch ran serially). Annotation only — the ledger carries no gang
    /// column, so reconciliation ignores it.
    pub gangs_max: u64,
    /// Widest lane packet any launch of this label executed at (1 = every
    /// launch ran scalar). Annotation only, like `gangs_max` — FLOP/byte
    /// counts are per-element, so reconciliation ignores it.
    pub lanes_max: u64,
}

/// Sum one rank's kernel events per label, in stream order.
pub fn aggregate_kernels(events: &[ParsedEvent]) -> BTreeMap<String, KernelAgg> {
    let mut out: BTreeMap<String, KernelAgg> = BTreeMap::new();
    for e in events {
        if e.ph != 'X' || e.cat != "kernel" {
            continue;
        }
        let a = out.entry(e.name.clone()).or_default();
        a.launches += 1;
        a.items += e.args.get("items").and_then(Value::as_u64).unwrap_or(0);
        a.flops += e.args.get("flops").and_then(Value::as_f64).unwrap_or(0.0);
        a.bytes_read += e
            .args
            .get("bytes_read")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        a.bytes_written += e
            .args
            .get("bytes_written")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        a.wall_us += e.dur_us;
        a.gangs_max = a
            .gangs_max
            .max(e.args.get("gangs").and_then(Value::as_u64).unwrap_or(1));
        a.lanes_max = a
            .lanes_max
            .max(e.args.get("lanes").and_then(Value::as_u64).unwrap_or(1));
    }
    out
}

/// Exactly reconcile one rank's aggregated kernel events against its
/// embedded analytic-ledger snapshot. Returns every discrepancy found.
pub fn reconcile(agg: &BTreeMap<String, KernelAgg>, ledger: &[LedgerRow]) -> Vec<String> {
    let mut errs = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for row in ledger {
        seen.insert(row.label.as_str());
        let Some(a) = agg.get(&row.label) else {
            errs.push(format!("ledger kernel {} absent from trace", row.label));
            continue;
        };
        if a.launches != row.launches {
            errs.push(format!(
                "{}: launches {} (trace) != {} (ledger)",
                row.label, a.launches, row.launches
            ));
        }
        if a.items != row.items {
            errs.push(format!(
                "{}: items {} (trace) != {} (ledger)",
                row.label, a.items, row.items
            ));
        }
        for (what, t, l) in [
            ("flops", a.flops, row.flops),
            ("bytes_read", a.bytes_read, row.bytes_read),
            ("bytes_written", a.bytes_written, row.bytes_written),
        ] {
            if t.to_bits() != l.to_bits() {
                errs.push(format!(
                    "{}: {what} {t:e} (trace) != {l:e} (ledger, diff {:e})",
                    row.label,
                    t - l
                ));
            }
        }
    }
    for label in agg.keys() {
        if !seen.contains(label.as_str()) {
            errs.push(format!("trace kernel {label} absent from ledger"));
        }
    }
    errs
}

/// Reconcile every rank of a parsed trace against its embedded ledger.
/// Ranks whose ring dropped events cannot reconcile and are reported as
/// such.
pub fn reconcile_trace(trace: &ParsedTrace) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    for (rank, events) in &trace.ranks {
        if trace.dropped.get(rank).copied().unwrap_or(0) > 0 {
            errs.push(format!(
                "rank {rank}: ring dropped events; stream incomplete, cannot reconcile"
            ));
            continue;
        }
        let Some(ledger) = trace.ledgers.get(rank) else {
            // A rank without an attached ledger has nothing to check
            // (e.g. a pure I/O helper lane).
            continue;
        };
        let agg = aggregate_kernels(events);
        for e in reconcile(&agg, ledger) {
            errs.push(format!("rank {rank}: {e}"));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Measured time decomposition for one rank, from leaf complete events —
/// the per-rank comm-vs-compute split the paper reads off its Fig. 4
/// timelines.
#[derive(Debug, Clone, Default)]
pub struct RankSplit {
    pub rank: u64,
    /// Σ kernel-event durations, µs.
    pub kernel_us: f64,
    /// Σ point-to-point comm durations (blocked waits + copies), µs.
    pub comm_us: f64,
    /// Σ leaf file-I/O durations, µs.
    pub io_us: f64,
    /// Wall extent of the rank's stream (first ts → last ts+dur), µs.
    pub extent_us: f64,
}

impl RankSplit {
    /// Fraction of accounted (kernel + comm) time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let acc = self.kernel_us + self.comm_us;
        if acc > 0.0 {
            self.comm_us / acc
        } else {
            0.0
        }
    }
}

/// Compute the leaf-event time split for one rank's stream.
pub fn rank_split(rank: u64, events: &[ParsedEvent]) -> RankSplit {
    let mut s = RankSplit {
        rank,
        ..Default::default()
    };
    let mut first = f64::INFINITY;
    let mut last = f64::NEG_INFINITY;
    for e in events {
        first = first.min(e.ts_us);
        last = last.max(e.ts_us + e.dur_us);
        if e.ph != 'X' {
            continue;
        }
        match e.cat.as_str() {
            "kernel" => s.kernel_us += e.dur_us,
            "comm" => s.comm_us += e.dur_us,
            "io" => s.io_us += e.dur_us,
            _ => {}
        }
    }
    if last > first {
        s.extent_us = last - first;
    }
    s
}

/// Per-rank splits for a whole parsed trace, sorted by rank.
pub fn splits(trace: &ParsedTrace) -> Vec<RankSplit> {
    trace
        .ranks
        .iter()
        .map(|(rank, events)| rank_split(*rank, events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{export_to_string, parse_str};
    use crate::event::{Category, CommOp};
    use crate::tracer::Tracer;
    use std::time::{Duration, Instant};

    /// Emit `n` launches of the same label with awkward float costs and a
    /// matching hand-accumulated ledger; reconciliation must be exact.
    #[test]
    fn reconciliation_is_bitwise_across_json() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        let (fpi, bri, bwi) = (0.1_f64, 3.7_f64, 0.3_f64);
        let mut row = LedgerRow {
            label: "k".into(),
            launches: 0,
            items: 0,
            flops: 0.0,
            bytes_read: 0.0,
            bytes_written: 0.0,
            wall_ns: 0,
        };
        for launch in 0..7 {
            let items = 100 + launch * 13;
            let t0 = Instant::now();
            h.kernel(
                "k",
                items,
                fpi * items as f64,
                bri * items as f64,
                bwi * items as f64,
                t0,
                Duration::from_nanos(50),
            );
            row.launches += 1;
            row.items += items;
            row.flops += fpi * items as f64;
            row.bytes_read += bri * items as f64;
            row.bytes_written += bwi * items as f64;
        }
        h.attach_ledger(vec![row]);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        assert!(reconcile_trace(&parsed).is_ok());
    }

    #[test]
    fn reconciliation_catches_missing_launches() {
        let tracer = Tracer::new();
        let h = tracer.handle(0);
        h.kernel(
            "k",
            10,
            1.0,
            2.0,
            3.0,
            Instant::now(),
            Duration::from_nanos(10),
        );
        h.attach_ledger(vec![LedgerRow {
            label: "k".into(),
            launches: 2, // ledger saw two launches, trace only one
            items: 20,
            flops: 2.0,
            bytes_read: 4.0,
            bytes_written: 6.0,
            wall_ns: 20,
        }]);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let errs = reconcile_trace(&parsed).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("launches")));
    }

    #[test]
    fn dropped_rings_refuse_to_reconcile() {
        let tracer = Tracer::with_capacity(16);
        let h = tracer.handle(0);
        for _ in 0..40 {
            h.kernel(
                "k",
                1,
                1.0,
                1.0,
                1.0,
                Instant::now(),
                Duration::from_nanos(1),
            );
        }
        h.attach_ledger(vec![]);
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let errs = reconcile_trace(&parsed).unwrap_err();
        assert!(errs[0].contains("incomplete"));
    }

    #[test]
    fn split_sums_leaf_durations_by_category() {
        let tracer = Tracer::new();
        let h = tracer.handle(2);
        h.kernel(
            "k",
            1,
            1.0,
            1.0,
            1.0,
            Instant::now(),
            Duration::from_micros(30),
        );
        // A blocked receive: fake the start in the past is not possible
        // with a monotone clock, so just check categories route correctly.
        h.comm(CommOp::Recv, 0, 64, Instant::now());
        h.io("wave_file", 128, Instant::now());
        {
            let _s = h.span("barrier", Category::Collective);
        }
        let parsed = parse_str(&export_to_string(&tracer.snapshot())).unwrap();
        let s = &splits(&parsed)[0];
        assert_eq!(s.rank, 2);
        assert!(s.kernel_us >= 30.0);
        assert!(s.comm_fraction() < 0.5);
    }
}
