//! Fixed-width vector lanes — the `vector` half of the paper's
//! `parallel loop gang vector`.
//!
//! PR 6 reproduced the *gang* half of the directive (worker threads over
//! [`crate::exec::Context::gang_blocks`]); this module supplies the lane
//! half. A [`VecF64<W>`] is a packet of `W` IEEE-754 doubles whose every
//! operation is purely elementwise: lane `i` of `a op b` is exactly
//! `a.lane(i) op b.lane(i)`, evaluated by the scalar `f64` operator. No
//! fused multiply-add, no reassociation, no approximation — so a kernel
//! written once against the [`Lane`] trait performs, per lane, *exactly*
//! the scalar op sequence, and the result at any width is bitwise
//! identical to `vector_width = 1` by construction.
//!
//! Control flow inside lane kernels is expressed with bitmask selects
//! ([`Lane::select`] picks the bits of one of two fully computed values),
//! mirroring how SIMT warps and SIMD units execute both sides of a branch
//! under a mask. Because the selected value is produced by the unchanged
//! scalar expression and IEEE arithmetic never traps, computing the
//! discarded side is observationally free. Horizontal reductions (CFL
//! max, first-violation scans, conservation sums) must extract lanes with
//! [`Lane::lane`] and fold them in ascending lane order — lane `i` of a
//! packet starting at item `s` is item `s + i`, so the serial fold order
//! is reproduced exactly.
//!
//! Widths are powers of two up to [`MAX_WIDTH`]; [`DEFAULT_WIDTH`] is 4,
//! matching the four-double FP width (AVX2 / 2×NEON) of commodity hosts.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// Largest supported lane width.
pub const MAX_WIDTH: usize = 8;

/// Default lane width (`--vector-width 4`).
pub const DEFAULT_WIDTH: usize = 4;

/// Validate a requested lane width: a power of two, at most [`MAX_WIDTH`].
pub fn validate_width(w: usize) -> Result<(), String> {
    if (1..=MAX_WIDTH).contains(&w) && w.is_power_of_two() {
        Ok(())
    } else {
        Err(format!(
            "vector_width must be a power of two in 1..={MAX_WIDTH}, got {w}"
        ))
    }
}

/// Lane width the host's SIMD units can actually retire per FP
/// instruction, from the compile-time target features (8 under AVX-512, 4
/// under AVX/AVX2, 2 under baseline x86-64 SSE2 or NEON, else 1). The
/// roofline vector-efficiency model caps its predicted speedup here: lanes
/// beyond the hardware width still execute, they just round-robin the same
/// units.
pub fn hw_lane_width() -> usize {
    if cfg!(target_feature = "avx512f") {
        8
    } else if cfg!(target_feature = "avx") {
        4
    } else if cfg!(any(target_feature = "sse2", target_feature = "neon")) {
        2
    } else {
        1
    }
}

/// A packet of lanes of `f64`, all ops elementwise and bit-exact.
///
/// Implemented by `f64` itself (width 1 — the scalar build) and by
/// [`VecF64<W>`]. Every method is required to act per-lane with the exact
/// scalar `f64` semantics; nothing may reassociate, contract, or
/// approximate. That contract is what makes lane execution bitwise
/// deterministic across widths.
pub trait Lane:
    Copy
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Number of lanes in the packet.
    const WIDTH: usize;

    /// All-lanes condition mask (one full-width bitmask word per lane:
    /// all-ones = true, all-zeros = false — the sign-mask idiom).
    type Mask: Copy;

    /// Broadcast a scalar to every lane.
    fn splat(x: f64) -> Self;

    /// Unit-stride load of `WIDTH` lanes from `src[0..WIDTH]`.
    ///
    /// Debug-asserts the slice holds a full packet — the guard that
    /// catches a kernel body indexing past its lane packet (tail-handling
    /// bugs) before it corrupts memory.
    fn load(src: &[f64]) -> Self;

    /// Unit-stride store of `WIDTH` lanes into `dst[0..WIDTH]`.
    fn store(self, dst: &mut [f64]);

    /// Build a packet lane-by-lane (`f(0), f(1), ..`) — for non-contiguous
    /// sources such as atomic shared views.
    fn from_lanes(f: impl FnMut(usize) -> f64) -> Self;

    /// Extract lane `i` (`i < WIDTH`). Horizontal folds must consume lanes
    /// in ascending order to reproduce the serial fold.
    fn lane(self, i: usize) -> f64;

    /// Elementwise `f64::sqrt`.
    fn sqrt(self) -> Self;
    /// Elementwise `f64::abs`.
    fn abs(self) -> Self;
    /// Elementwise `f64::min` (NaN-ignoring, like the scalar kernels).
    fn min(self, o: Self) -> Self;
    /// Elementwise `f64::max`.
    fn max(self, o: Self) -> Self;
    /// Elementwise `f64::clamp` against scalar bounds.
    fn clamp(self, lo: f64, hi: f64) -> Self;

    /// Elementwise `<` mask. Like the scalar comparison, any NaN operand
    /// compares false.
    fn lt(self, o: Self) -> Self::Mask;
    /// Elementwise `<=` mask.
    fn le(self, o: Self) -> Self::Mask;
    /// Elementwise `>` mask.
    fn gt(self, o: Self) -> Self::Mask;
    /// Elementwise `>=` mask.
    fn ge(self, o: Self) -> Self::Mask;
    /// Elementwise `f64::is_finite` mask.
    fn finite(self) -> Self::Mask;

    /// Per-lane bit select: lane `i` takes the exact bits of `a.lane(i)`
    /// where the mask is set, else of `b.lane(i)` — branchless, and
    /// bit-exact including NaN payloads and signed zeros.
    fn select(m: Self::Mask, a: Self, b: Self) -> Self;

    /// Lanewise mask AND.
    fn mask_and(a: Self::Mask, b: Self::Mask) -> Self::Mask;
    /// Lanewise mask OR.
    fn mask_or(a: Self::Mask, b: Self::Mask) -> Self::Mask;
    /// Lanewise mask NOT.
    fn mask_not(m: Self::Mask) -> Self::Mask;
    /// True if the mask is set in any lane.
    fn mask_any(m: Self::Mask) -> bool;
    /// True if the mask is set in every lane.
    fn mask_all(m: Self::Mask) -> bool;
}

const TRUE_BITS: u64 = !0u64;

#[inline(always)]
fn mask_bits(b: bool) -> u64 {
    if b {
        TRUE_BITS
    } else {
        0
    }
}

#[inline(always)]
fn bit_select(m: u64, a: f64, b: f64) -> f64 {
    f64::from_bits((a.to_bits() & m) | (b.to_bits() & !m))
}

impl Lane for f64 {
    const WIDTH: usize = 1;
    type Mask = u64;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        debug_assert!(!src.is_empty(), "lane load past the packet");
        src[0]
    }
    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        debug_assert!(!dst.is_empty(), "lane store past the packet");
        dst[0] = self;
    }
    #[inline(always)]
    fn from_lanes(mut f: impl FnMut(usize) -> f64) -> Self {
        f(0)
    }
    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        debug_assert_eq!(i, 0, "lane index past the packet");
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        f64::min(self, o)
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        f64::max(self, o)
    }
    #[inline(always)]
    fn clamp(self, lo: f64, hi: f64) -> Self {
        f64::clamp(self, lo, hi)
    }
    #[inline(always)]
    fn lt(self, o: Self) -> u64 {
        mask_bits(self < o)
    }
    #[inline(always)]
    fn le(self, o: Self) -> u64 {
        mask_bits(self <= o)
    }
    #[inline(always)]
    fn gt(self, o: Self) -> u64 {
        mask_bits(self > o)
    }
    #[inline(always)]
    fn ge(self, o: Self) -> u64 {
        mask_bits(self >= o)
    }
    #[inline(always)]
    fn finite(self) -> u64 {
        mask_bits(self.is_finite())
    }
    #[inline(always)]
    fn select(m: u64, a: Self, b: Self) -> Self {
        bit_select(m, a, b)
    }
    #[inline(always)]
    fn mask_and(a: u64, b: u64) -> u64 {
        a & b
    }
    #[inline(always)]
    fn mask_or(a: u64, b: u64) -> u64 {
        a | b
    }
    #[inline(always)]
    fn mask_not(m: u64) -> u64 {
        !m
    }
    #[inline(always)]
    fn mask_any(m: u64) -> bool {
        m != 0
    }
    #[inline(always)]
    fn mask_all(m: u64) -> bool {
        m == TRUE_BITS
    }
}

/// A `W`-lane packet of `f64` (`W` a power of two, at most [`MAX_WIDTH`]).
///
/// Plain `[f64; W]` under the hood: the element loops are fixed-length
/// and unit-stride, exactly the shape LLVM's auto-vectorizer turns into
/// packed SIMD on any target — while the semantics stay scalar-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VecF64<const W: usize>(pub [f64; W]);

macro_rules! elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> $trait for VecF64<W> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, o: Self) -> Self {
                VecF64(std::array::from_fn(|i| self.0[i] $op o.0[i]))
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);
elementwise!(Mul, mul, *);
elementwise!(Div, div, /);

impl<const W: usize> Neg for VecF64<W> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        VecF64(std::array::from_fn(|i| -self.0[i]))
    }
}

impl<const W: usize> Lane for VecF64<W> {
    const WIDTH: usize = W;
    type Mask = [u64; W];

    #[inline(always)]
    fn splat(x: f64) -> Self {
        VecF64([x; W])
    }
    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        debug_assert!(src.len() >= W, "lane load past the packet");
        VecF64(std::array::from_fn(|i| src[i]))
    }
    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        debug_assert!(dst.len() >= W, "lane store past the packet");
        dst[..W].copy_from_slice(&self.0);
    }
    #[inline(always)]
    fn from_lanes(mut f: impl FnMut(usize) -> f64) -> Self {
        VecF64(std::array::from_fn(&mut f))
    }
    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        debug_assert!(i < W, "lane index past the packet");
        self.0[i]
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        VecF64(std::array::from_fn(|i| self.0[i].sqrt()))
    }
    #[inline(always)]
    fn abs(self) -> Self {
        VecF64(std::array::from_fn(|i| self.0[i].abs()))
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        VecF64(std::array::from_fn(|i| self.0[i].min(o.0[i])))
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        VecF64(std::array::from_fn(|i| self.0[i].max(o.0[i])))
    }
    #[inline(always)]
    fn clamp(self, lo: f64, hi: f64) -> Self {
        VecF64(std::array::from_fn(|i| self.0[i].clamp(lo, hi)))
    }
    #[inline(always)]
    fn lt(self, o: Self) -> [u64; W] {
        std::array::from_fn(|i| mask_bits(self.0[i] < o.0[i]))
    }
    #[inline(always)]
    fn le(self, o: Self) -> [u64; W] {
        std::array::from_fn(|i| mask_bits(self.0[i] <= o.0[i]))
    }
    #[inline(always)]
    fn gt(self, o: Self) -> [u64; W] {
        std::array::from_fn(|i| mask_bits(self.0[i] > o.0[i]))
    }
    #[inline(always)]
    fn ge(self, o: Self) -> [u64; W] {
        std::array::from_fn(|i| mask_bits(self.0[i] >= o.0[i]))
    }
    #[inline(always)]
    fn finite(self) -> [u64; W] {
        std::array::from_fn(|i| mask_bits(self.0[i].is_finite()))
    }
    #[inline(always)]
    fn select(m: [u64; W], a: Self, b: Self) -> Self {
        VecF64(std::array::from_fn(|i| bit_select(m[i], a.0[i], b.0[i])))
    }
    #[inline(always)]
    fn mask_and(a: [u64; W], b: [u64; W]) -> [u64; W] {
        std::array::from_fn(|i| a[i] & b[i])
    }
    #[inline(always)]
    fn mask_or(a: [u64; W], b: [u64; W]) -> [u64; W] {
        std::array::from_fn(|i| a[i] | b[i])
    }
    #[inline(always)]
    fn mask_not(m: [u64; W]) -> [u64; W] {
        std::array::from_fn(|i| !m[i])
    }
    #[inline(always)]
    fn mask_any(m: [u64; W]) -> bool {
        m.iter().any(|&b| b != 0)
    }
    #[inline(always)]
    fn mask_all(m: [u64; W]) -> bool {
        m.iter().all(|&b| b == TRUE_BITS)
    }
}

/// A kernel body executable at any lane width over a `rows × row_len`
/// iteration space (see [`crate::exec::Context::launch_vec`]).
///
/// `packet(row, col)` must process items `(row, col .. col + L::WIDTH)` —
/// the runtime guarantees the packet never crosses a row boundary, so
/// unit-stride lane loads relative to `col` are always in-bounds within
/// the row's data. The trait has a generic method (object safety is not
/// needed) so one body monomorphizes to every width plus the scalar tail.
pub trait LaneKernel: Sync {
    fn packet<L: Lane>(&self, row: usize, col: usize);
}

/// Like [`LaneKernel`] but returning a packet for a horizontal max
/// reduction (see [`crate::exec::Context::launch_max_vec`]).
pub trait LaneMaxKernel: Sync {
    fn packet<L: Lane>(&self, row: usize, col: usize) -> L;
}

/// A gang-scope body executable at any lane width (see
/// [`crate::exec::Context::gang_vec_scope`]): `run` receives the gang id,
/// its contiguous unit range, and exclusive scratch, exactly like the
/// closure of `gang_scope_with`, and handles its own packet/tail tiling.
pub trait LaneGangBody<S, R>: Sync {
    fn run<L: Lane>(&self, gang: usize, range: std::ops::Range<usize>, state: &mut S) -> R;
}

/// Dispatch a runtime lane width to a monomorphized instantiation:
/// `with_lane_width!(w, L => expr)` evaluates `expr` with `L` bound to
/// `f64` (w = 1) or `VecF64<w>`. The width must already be validated.
#[macro_export]
macro_rules! with_lane_width {
    ($w:expr, $L:ident => $body:expr) => {
        match $w {
            1 => {
                type $L = f64;
                $body
            }
            2 => {
                type $L = $crate::vector::VecF64<2>;
                $body
            }
            4 => {
                type $L = $crate::vector::VecF64<4>;
                $body
            }
            8 => {
                type $L = $crate::vector::VecF64<8>;
                $body
            }
            other => unreachable!("unvalidated vector width {other}"),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_validation() {
        for w in [1, 2, 4, 8] {
            assert!(validate_width(w).is_ok(), "width {w}");
        }
        for w in [0, 3, 5, 6, 7, 12, 16] {
            assert!(validate_width(w).is_err(), "width {w}");
        }
    }

    fn probe_values() -> Vec<f64> {
        vec![
            1.5,
            -2.25,
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-300,
            -1e300,
            std::f64::consts::PI,
        ]
    }

    /// Every VecF64 op must equal the scalar op lane-by-lane, bitwise.
    #[test]
    fn ops_are_bitwise_lanewise_scalar() {
        let vals = probe_values();
        const W: usize = 4;
        for (ai, a0) in vals.iter().enumerate() {
            for &b0 in &vals {
                let a = VecF64::<W>::from_lanes(|i| a0 + i as f64 * 0.5);
                let b = VecF64::<W>::splat(b0);
                let pairs: [(f64, f64, &str); 7] = [
                    ((a + b).lane(1), a.lane(1) + b0, "add"),
                    ((a - b).lane(1), a.lane(1) - b0, "sub"),
                    ((a * b).lane(1), a.lane(1) * b0, "mul"),
                    ((a / b).lane(1), a.lane(1) / b0, "div"),
                    (a.min(b).lane(2), a.lane(2).min(b0), "min"),
                    (a.max(b).lane(2), a.lane(2).max(b0), "max"),
                    ((-a).lane(3), -a.lane(3), "neg"),
                ];
                for (got, want, op) in pairs {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{op} lane mismatch at val {ai}"
                    );
                }
                assert_eq!(a.sqrt().lane(0).to_bits(), a.lane(0).sqrt().to_bits());
                assert_eq!(a.abs().lane(0).to_bits(), a.lane(0).abs().to_bits());
                assert_eq!(
                    a.clamp(-1.0, 1.0).lane(1).to_bits(),
                    a.lane(1).clamp(-1.0, 1.0).to_bits()
                );
            }
        }
    }

    #[test]
    fn comparisons_match_scalar_incl_nan() {
        let vals = probe_values();
        for &x in &vals {
            for &y in &vals {
                let a = VecF64::<2>::splat(x);
                let b = VecF64::<2>::splat(y);
                assert_eq!(VecF64::<2>::mask_any(a.lt(b)), x < y);
                assert_eq!(VecF64::<2>::mask_any(a.le(b)), x <= y);
                assert_eq!(VecF64::<2>::mask_any(a.gt(b)), x > y);
                assert_eq!(VecF64::<2>::mask_any(a.ge(b)), x >= y);
                assert_eq!(VecF64::<2>::mask_all(a.finite()), x.is_finite());
            }
        }
    }

    /// Select is bit-exact: NaN payloads and signed zeros survive.
    #[test]
    fn select_preserves_exact_bits() {
        let exotic = f64::from_bits(0x7ff8_dead_beef_0001); // NaN payload
        let a = VecF64::<4>::from_lanes(|i| if i % 2 == 0 { exotic } else { -0.0 });
        let b = VecF64::<4>::splat(7.0);
        let m = a.lt(b); // NaN < 7.0 is false; -0.0 < 7.0 is true
        let s = VecF64::<4>::select(m, a, b);
        assert_eq!(s.lane(0).to_bits(), 7.0f64.to_bits());
        assert_eq!(s.lane(1).to_bits(), (-0.0f64).to_bits());
        let n = VecF64::<4>::select(VecF64::<4>::mask_not(m), a, b);
        assert_eq!(n.lane(0).to_bits(), exotic.to_bits());
    }

    #[test]
    fn load_store_round_trip_and_lane_order() {
        let src: Vec<f64> = (0..12).map(|i| i as f64 * 1.25 - 3.0).collect();
        let v = VecF64::<8>::load(&src[2..]);
        for i in 0..8 {
            assert_eq!(v.lane(i), src[2 + i]);
        }
        let mut dst = [0.0; 8];
        v.store(&mut dst);
        assert_eq!(&dst, &src[2..10]);
        // Scalar f64 as a 1-wide lane.
        let s = f64::load(&src[5..]);
        assert_eq!(s, src[5]);
    }

    #[test]
    fn mask_logic() {
        type M = <VecF64<4> as Lane>::Mask;
        let t: M = [TRUE_BITS; 4];
        let f: M = [0; 4];
        let mixed: M = [TRUE_BITS, 0, TRUE_BITS, 0];
        assert!(VecF64::<4>::mask_all(t) && !VecF64::<4>::mask_all(mixed));
        assert!(VecF64::<4>::mask_any(mixed) && !VecF64::<4>::mask_any(f));
        assert_eq!(VecF64::<4>::mask_and(mixed, t), mixed);
        assert_eq!(VecF64::<4>::mask_or(mixed, f), mixed);
        assert_eq!(VecF64::<4>::mask_not(f), t);
    }

    #[test]
    fn dispatch_macro_covers_all_widths() {
        for w in [1usize, 2, 4, 8] {
            let width = with_lane_width!(w, L => L::WIDTH);
            assert_eq!(width, w);
        }
    }

    #[test]
    fn hw_lane_width_is_a_valid_width() {
        let w = hw_lane_width();
        assert!(validate_width(w).is_ok());
    }
}
