//! The profiling ledger: what an OpenACC profiler would have recorded.

use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

use crate::cost::{KernelClass, KernelCost};

/// Direction of a data-region transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferDirection {
    /// `update device` / `enter data copyin`.
    HostToDevice,
    /// `update host` / `exit data copyout`.
    DeviceToHost,
}

/// Accumulated statistics for one kernel label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelStats {
    pub label: String,
    pub class: Option<KernelClass>,
    /// Number of launches.
    pub launches: u64,
    /// Total collapsed-loop iterations across launches.
    pub items: u64,
    /// Total declared FLOPs.
    pub flops: f64,
    /// Total declared bytes read.
    pub bytes_read: f64,
    /// Total declared bytes written.
    pub bytes_written: f64,
    /// Total host wall time spent in the kernel bodies.
    pub wall: Duration,
}

impl KernelStats {
    /// Arithmetic intensity in FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops / (self.bytes_read + self.bytes_written)
    }

    /// Measured host FLOP rate (FLOP/s).
    pub fn host_flops_per_sec(&self) -> f64 {
        self.flops / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Accumulated transfer statistics for one direction.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TransferStats {
    pub count: u64,
    pub bytes: u64,
}

/// Kind of fault-tolerance event recorded by the resilient run driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ResilienceEventKind {
    /// A checkpoint wave committed by all live ranks.
    Checkpoint,
    /// A rank-failure (or suspected failure) detected on the exchange path.
    FaultDetected,
    /// All ranks rolled back to the last committed checkpoint wave.
    Rollback,
    /// Steps re-executed after a rollback, up to the pre-fault step.
    Replay,
    /// The numerical-health watchdog flagged a nonphysical cell.
    HealthFault,
    /// A faulted step was rejected and retried from the saved state.
    Retry,
    /// The recovery ladder engaged a more dissipative policy rung.
    Degrade,
    /// Clean steps elapsed and the default policy was restored.
    Restore,
    /// Diagnostic crash-dump checkpoint written on unrecoverable abort.
    CrashDump,
    /// Survivors reconfigured the communicator to the smaller rank count
    /// after a permanent rank loss (`FailurePolicy::Shrink`).
    Shrink,
    /// A committed checkpoint wave was redistributed cross-shard onto a
    /// reconfigured decomposition.
    Redistribute,
    /// A hot spare was promoted into a permanently dead rank's slot
    /// (`FailurePolicy::Spare`).
    PromoteSpare,
}

impl ResilienceEventKind {
    pub fn name(&self) -> &'static str {
        match self {
            ResilienceEventKind::Checkpoint => "checkpoint",
            ResilienceEventKind::FaultDetected => "fault_detected",
            ResilienceEventKind::Rollback => "rollback",
            ResilienceEventKind::Replay => "replay",
            ResilienceEventKind::HealthFault => "health_fault",
            ResilienceEventKind::Retry => "retry",
            ResilienceEventKind::Degrade => "degrade",
            ResilienceEventKind::Restore => "restore",
            ResilienceEventKind::CrashDump => "crash_dump",
            ResilienceEventKind::Shrink => "shrink",
            ResilienceEventKind::Redistribute => "redistribute",
            ResilienceEventKind::PromoteSpare => "promote_spare",
        }
    }
}

/// One fault-tolerance event: what happened, where, and how long the
/// handling took (detection latency, rollback time, replayed-step time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceEvent {
    pub kind: ResilienceEventKind,
    /// Rank that observed / drove the event.
    pub rank: usize,
    /// Solver step at which the event happened.
    pub step: u64,
    /// Checkpoint wave involved (committed, or rolled back to).
    pub wave: u64,
    /// Wall time attributed to the event.
    pub wall: Duration,
    /// Free-form context (e.g. which peer was declared dead).
    pub detail: String,
}

/// Thread-safe accumulation of kernel launches and data transfers.
///
/// This is the substitute for `nsys`/`rocprof` output: every number the
/// performance model needs (per-kernel FLOPs, bytes, iteration counts,
/// transfer volumes) accumulates here while the *real* solver runs.
#[derive(Debug, Default)]
pub struct Ledger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    kernels: HashMap<&'static str, KernelStats>,
    transfers: HashMap<TransferDirection, TransferStats>,
    events: Vec<ResilienceEvent>,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Record one kernel launch.
    pub fn record_launch(&self, label: &'static str, cost: KernelCost, items: u64, wall: Duration) {
        let mut inner = self.inner.lock().unwrap();
        let e = inner.kernels.entry(label).or_insert_with(|| KernelStats {
            label: label.to_string(),
            class: Some(cost.class),
            ..Default::default()
        });
        e.launches += 1;
        e.items += items;
        e.flops += cost.flops_per_item * items as f64;
        e.bytes_read += cost.bytes_read_per_item * items as f64;
        e.bytes_written += cost.bytes_written_per_item * items as f64;
        e.wall += wall;
    }

    /// Record a data-region transfer.
    pub fn record_transfer(&self, dir: TransferDirection, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        let e = inner.transfers.entry(dir).or_default();
        e.count += 1;
        e.bytes += bytes;
    }

    /// Snapshot of every kernel's statistics, sorted by descending wall
    /// time (the order a profile summary lists them in).
    pub fn kernel_stats(&self) -> Vec<KernelStats> {
        let inner = self.inner.lock().unwrap();
        let mut v: Vec<_> = inner.kernels.values().cloned().collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.wall));
        v
    }

    /// Statistics for a single label, if it has launched.
    pub fn kernel(&self, label: &str) -> Option<KernelStats> {
        self.inner.lock().unwrap().kernels.get(label).cloned()
    }

    /// Totals aggregated by kernel class.
    pub fn by_class(&self) -> HashMap<KernelClass, KernelStats> {
        let inner = self.inner.lock().unwrap();
        let mut out: HashMap<KernelClass, KernelStats> = HashMap::new();
        for s in inner.kernels.values() {
            let class = s.class.unwrap_or(KernelClass::Other);
            let e = out.entry(class).or_insert_with(|| KernelStats {
                label: class.name().to_string(),
                class: Some(class),
                ..Default::default()
            });
            e.launches += s.launches;
            e.items += s.items;
            e.flops += s.flops;
            e.bytes_read += s.bytes_read;
            e.bytes_written += s.bytes_written;
            e.wall += s.wall;
        }
        out
    }

    /// Transfer statistics for one direction.
    pub fn transfers(&self, dir: TransferDirection) -> TransferStats {
        self.inner
            .lock()
            .unwrap()
            .transfers
            .get(&dir)
            .copied()
            .unwrap_or_default()
    }

    /// Total wall time across all kernels.
    pub fn total_wall(&self) -> Duration {
        self.inner
            .lock()
            .unwrap()
            .kernels
            .values()
            .map(|s| s.wall)
            .sum()
    }

    /// Record a fault-tolerance event (checkpoint commit, fault
    /// detection, rollback, replay).
    pub fn record_event(&self, event: ResilienceEvent) {
        self.inner.lock().unwrap().events.push(event);
    }

    /// All recorded fault-tolerance events, in recording order.
    pub fn events(&self) -> Vec<ResilienceEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Events of one kind, in recording order.
    pub fn events_of(&self, kind: ResilienceEventKind) -> Vec<ResilienceEvent> {
        self.inner
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Forget everything (e.g. to exclude warm-up steps from a profile).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.kernels.clear();
        inner.transfers.clear();
        inner.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> KernelCost {
        KernelCost::new(KernelClass::Weno, 100.0, 40.0, 8.0)
    }

    #[test]
    fn launches_accumulate() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 10, Duration::from_millis(1));
        l.record_launch("k", cost(), 20, Duration::from_millis(2));
        let s = l.kernel("k").unwrap();
        assert_eq!(s.launches, 2);
        assert_eq!(s.items, 30);
        assert!((s.flops - 3000.0).abs() < 1e-9);
        assert_eq!(s.wall, Duration::from_millis(3));
    }

    #[test]
    fn arithmetic_intensity_matches_declared_cost() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 7, Duration::from_micros(5));
        let s = l.kernel("k").unwrap();
        assert!((s.arithmetic_intensity() - cost().arithmetic_intensity()).abs() < 1e-12);
    }

    #[test]
    fn transfers_accumulate_per_direction() {
        let l = Ledger::new();
        l.record_transfer(TransferDirection::HostToDevice, 100);
        l.record_transfer(TransferDirection::HostToDevice, 50);
        l.record_transfer(TransferDirection::DeviceToHost, 10);
        assert_eq!(l.transfers(TransferDirection::HostToDevice).count, 2);
        assert_eq!(l.transfers(TransferDirection::HostToDevice).bytes, 150);
        assert_eq!(l.transfers(TransferDirection::DeviceToHost).bytes, 10);
    }

    #[test]
    fn by_class_merges_labels() {
        let l = Ledger::new();
        l.record_launch("weno_x", cost(), 5, Duration::from_millis(1));
        l.record_launch("weno_y", cost(), 5, Duration::from_millis(1));
        let by = l.by_class();
        assert_eq!(by[&KernelClass::Weno].items, 10);
        assert_eq!(by[&KernelClass::Weno].launches, 2);
    }

    #[test]
    fn stats_sorted_by_wall_time() {
        let l = Ledger::new();
        l.record_launch("small", cost(), 1, Duration::from_millis(1));
        l.record_launch("big", cost(), 1, Duration::from_millis(10));
        let v = l.kernel_stats();
        assert_eq!(v[0].label, "big");
    }

    #[test]
    fn reset_clears_everything() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 1, Duration::from_millis(1));
        l.record_transfer(TransferDirection::DeviceToHost, 8);
        l.record_event(ResilienceEvent {
            kind: ResilienceEventKind::Checkpoint,
            rank: 0,
            step: 1,
            wave: 0,
            wall: Duration::ZERO,
            detail: String::new(),
        });
        l.reset();
        assert!(l.kernel("k").is_none());
        assert_eq!(l.transfers(TransferDirection::DeviceToHost).count, 0);
        assert!(l.events().is_empty());
    }

    #[test]
    fn events_filter_by_kind_and_keep_order() {
        let l = Ledger::new();
        for (i, kind) in [
            ResilienceEventKind::FaultDetected,
            ResilienceEventKind::Rollback,
            ResilienceEventKind::Replay,
            ResilienceEventKind::Rollback,
        ]
        .into_iter()
        .enumerate()
        {
            l.record_event(ResilienceEvent {
                kind,
                rank: i,
                step: i as u64,
                wave: 0,
                wall: Duration::from_millis(i as u64),
                detail: format!("e{i}"),
            });
        }
        assert_eq!(l.events().len(), 4);
        let rollbacks = l.events_of(ResilienceEventKind::Rollback);
        assert_eq!(rollbacks.len(), 2);
        assert_eq!(rollbacks[0].rank, 1);
        assert_eq!(rollbacks[1].rank, 3);
    }
}
