//! The profiling ledger: what an OpenACC profiler would have recorded.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cost::{KernelClass, KernelCost};

/// Direction of a data-region transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferDirection {
    /// `update device` / `enter data copyin`.
    HostToDevice,
    /// `update host` / `exit data copyout`.
    DeviceToHost,
}

/// Accumulated statistics for one kernel label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelStats {
    pub label: String,
    pub class: Option<KernelClass>,
    /// Number of launches.
    pub launches: u64,
    /// Total collapsed-loop iterations across launches.
    pub items: u64,
    /// Total declared FLOPs.
    pub flops: f64,
    /// Total declared bytes read.
    pub bytes_read: f64,
    /// Total declared bytes written.
    pub bytes_written: f64,
    /// Total host wall time spent in the kernel bodies.
    pub wall: Duration,
}

impl KernelStats {
    /// Arithmetic intensity in FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops / (self.bytes_read + self.bytes_written)
    }

    /// Measured host FLOP rate (FLOP/s).
    pub fn host_flops_per_sec(&self) -> f64 {
        self.flops / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Accumulated transfer statistics for one direction.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TransferStats {
    pub count: u64,
    pub bytes: u64,
}

/// Thread-safe accumulation of kernel launches and data transfers.
///
/// This is the substitute for `nsys`/`rocprof` output: every number the
/// performance model needs (per-kernel FLOPs, bytes, iteration counts,
/// transfer volumes) accumulates here while the *real* solver runs.
#[derive(Debug, Default)]
pub struct Ledger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    kernels: HashMap<&'static str, KernelStats>,
    transfers: HashMap<TransferDirection, TransferStats>,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Record one kernel launch.
    pub fn record_launch(
        &self,
        label: &'static str,
        cost: KernelCost,
        items: u64,
        wall: Duration,
    ) {
        let mut inner = self.inner.lock();
        let e = inner.kernels.entry(label).or_insert_with(|| KernelStats {
            label: label.to_string(),
            class: Some(cost.class),
            ..Default::default()
        });
        e.launches += 1;
        e.items += items;
        e.flops += cost.flops_per_item * items as f64;
        e.bytes_read += cost.bytes_read_per_item * items as f64;
        e.bytes_written += cost.bytes_written_per_item * items as f64;
        e.wall += wall;
    }

    /// Record a data-region transfer.
    pub fn record_transfer(&self, dir: TransferDirection, bytes: u64) {
        let mut inner = self.inner.lock();
        let e = inner.transfers.entry(dir).or_default();
        e.count += 1;
        e.bytes += bytes;
    }

    /// Snapshot of every kernel's statistics, sorted by descending wall
    /// time (the order a profile summary lists them in).
    pub fn kernel_stats(&self) -> Vec<KernelStats> {
        let inner = self.inner.lock();
        let mut v: Vec<_> = inner.kernels.values().cloned().collect();
        v.sort_by(|a, b| b.wall.cmp(&a.wall));
        v
    }

    /// Statistics for a single label, if it has launched.
    pub fn kernel(&self, label: &str) -> Option<KernelStats> {
        self.inner.lock().kernels.get(label).cloned()
    }

    /// Totals aggregated by kernel class.
    pub fn by_class(&self) -> HashMap<KernelClass, KernelStats> {
        let inner = self.inner.lock();
        let mut out: HashMap<KernelClass, KernelStats> = HashMap::new();
        for s in inner.kernels.values() {
            let class = s.class.unwrap_or(KernelClass::Other);
            let e = out.entry(class).or_insert_with(|| KernelStats {
                label: class.name().to_string(),
                class: Some(class),
                ..Default::default()
            });
            e.launches += s.launches;
            e.items += s.items;
            e.flops += s.flops;
            e.bytes_read += s.bytes_read;
            e.bytes_written += s.bytes_written;
            e.wall += s.wall;
        }
        out
    }

    /// Transfer statistics for one direction.
    pub fn transfers(&self, dir: TransferDirection) -> TransferStats {
        self.inner
            .lock()
            .transfers
            .get(&dir)
            .copied()
            .unwrap_or_default()
    }

    /// Total wall time across all kernels.
    pub fn total_wall(&self) -> Duration {
        self.inner.lock().kernels.values().map(|s| s.wall).sum()
    }

    /// Forget everything (e.g. to exclude warm-up steps from a profile).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.kernels.clear();
        inner.transfers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> KernelCost {
        KernelCost::new(KernelClass::Weno, 100.0, 40.0, 8.0)
    }

    #[test]
    fn launches_accumulate() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 10, Duration::from_millis(1));
        l.record_launch("k", cost(), 20, Duration::from_millis(2));
        let s = l.kernel("k").unwrap();
        assert_eq!(s.launches, 2);
        assert_eq!(s.items, 30);
        assert!((s.flops - 3000.0).abs() < 1e-9);
        assert_eq!(s.wall, Duration::from_millis(3));
    }

    #[test]
    fn arithmetic_intensity_matches_declared_cost() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 7, Duration::from_micros(5));
        let s = l.kernel("k").unwrap();
        assert!((s.arithmetic_intensity() - cost().arithmetic_intensity()).abs() < 1e-12);
    }

    #[test]
    fn transfers_accumulate_per_direction() {
        let l = Ledger::new();
        l.record_transfer(TransferDirection::HostToDevice, 100);
        l.record_transfer(TransferDirection::HostToDevice, 50);
        l.record_transfer(TransferDirection::DeviceToHost, 10);
        assert_eq!(l.transfers(TransferDirection::HostToDevice).count, 2);
        assert_eq!(l.transfers(TransferDirection::HostToDevice).bytes, 150);
        assert_eq!(l.transfers(TransferDirection::DeviceToHost).bytes, 10);
    }

    #[test]
    fn by_class_merges_labels() {
        let l = Ledger::new();
        l.record_launch("weno_x", cost(), 5, Duration::from_millis(1));
        l.record_launch("weno_y", cost(), 5, Duration::from_millis(1));
        let by = l.by_class();
        assert_eq!(by[&KernelClass::Weno].items, 10);
        assert_eq!(by[&KernelClass::Weno].launches, 2);
    }

    #[test]
    fn stats_sorted_by_wall_time() {
        let l = Ledger::new();
        l.record_launch("small", cost(), 1, Duration::from_millis(1));
        l.record_launch("big", cost(), 1, Duration::from_millis(10));
        let v = l.kernel_stats();
        assert_eq!(v[0].label, "big");
    }

    #[test]
    fn reset_clears_everything() {
        let l = Ledger::new();
        l.record_launch("k", cost(), 1, Duration::from_millis(1));
        l.record_transfer(TransferDirection::DeviceToHost, 8);
        l.reset();
        assert!(l.kernel("k").is_none());
        assert_eq!(l.transfers(TransferDirection::DeviceToHost).count, 0);
    }
}
