//! Human-readable profile summaries — the `nsys stats` / `rocprof`
//! analog, rendered from the ledger.

use crate::ledger::{Ledger, TransferDirection};

/// Render the fault-tolerance event log: one line per checkpoint,
/// detection, rollback, and replay, with per-event wall timing — the
/// resilience section of the `mfc-run` profile summary.
pub fn resilience_summary(ledger: &Ledger) -> String {
    let events = ledger.events();
    if events.is_empty() {
        return String::new();
    }
    let mut out = String::from("event           rank   step   wave   time(ms)  detail\n");
    for e in &events {
        out.push_str(&format!(
            "{:<15} {:>4} {:>6} {:>6} {:>10.3}  {}\n",
            e.kind.name(),
            e.rank,
            e.step,
            e.wave,
            e.wall.as_secs_f64() * 1e3,
            e.detail,
        ));
    }
    out
}

/// Render a per-kernel profile table sorted by wall time, with share of
/// total, launch counts, and arithmetic intensity.
pub fn kernel_summary(ledger: &Ledger) -> String {
    let stats = ledger.kernel_stats();
    let total: f64 = stats.iter().map(|s| s.wall.as_secs_f64()).sum();
    let mut out = String::from(
        "kernel                        class     launches      items   time(ms)  share   AI(F/B)\n",
    );
    for s in &stats {
        let ms = s.wall.as_secs_f64() * 1e3;
        out.push_str(&format!(
            "{:<29} {:<9} {:>8} {:>10} {:>10.3} {:>5.1}% {:>8.3}\n",
            s.label,
            s.class.map(|c| c.name()).unwrap_or("?"),
            s.launches,
            s.items,
            ms,
            100.0 * s.wall.as_secs_f64() / total.max(1e-300),
            s.arithmetic_intensity(),
        ));
    }
    out
}

/// Render the data-transfer summary (H2D/D2H counts and volumes).
pub fn transfer_summary(ledger: &Ledger) -> String {
    let h2d = ledger.transfers(TransferDirection::HostToDevice);
    let d2h = ledger.transfers(TransferDirection::DeviceToHost);
    format!(
        "transfers: H2D {} ops / {:.3} MB, D2H {} ops / {:.3} MB\n",
        h2d.count,
        h2d.bytes as f64 / 1e6,
        d2h.count,
        d2h.bytes as f64 / 1e6
    )
}

/// The paper's §IV-A observation, computed from a profile: the share of
/// compute-kernel wall time spent in the two hottest kernel classes.
pub fn hot_kernel_share(ledger: &Ledger) -> f64 {
    use crate::cost::KernelClass;
    let by = ledger.by_class();
    let total: f64 = by.values().map(|s| s.wall.as_secs_f64()).sum();
    let hot = by
        .get(&KernelClass::Weno)
        .map(|s| s.wall.as_secs_f64())
        .unwrap_or(0.0)
        + by.get(&KernelClass::Riemann)
            .map(|s| s.wall.as_secs_f64())
            .unwrap_or(0.0);
    hot / total.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};
    use std::time::Duration;

    fn ledger_with_data() -> Ledger {
        let l = Ledger::new();
        l.record_launch(
            "s_weno",
            KernelCost::new(KernelClass::Weno, 100.0, 40.0, 8.0),
            1000,
            Duration::from_millis(30),
        );
        l.record_launch(
            "s_riemann",
            KernelCost::new(KernelClass::Riemann, 50.0, 80.0, 40.0),
            500,
            Duration::from_millis(20),
        );
        l.record_launch(
            "s_other",
            KernelCost::new(KernelClass::Other, 5.0, 16.0, 8.0),
            2000,
            Duration::from_millis(10),
        );
        l.record_transfer(TransferDirection::HostToDevice, 1_000_000);
        l
    }

    #[test]
    fn summary_lists_kernels_by_time() {
        let text = kernel_summary(&ledger_with_data());
        let weno_pos = text.find("s_weno").unwrap();
        let riemann_pos = text.find("s_riemann").unwrap();
        let other_pos = text.find("s_other").unwrap();
        assert!(weno_pos < riemann_pos && riemann_pos < other_pos);
        assert!(text.contains("50.0%")); // 30ms of 60ms
    }

    #[test]
    fn transfer_summary_reports_megabytes() {
        let text = transfer_summary(&ledger_with_data());
        assert!(text.contains("H2D 1 ops / 1.000 MB"));
        assert!(text.contains("D2H 0 ops"));
    }

    #[test]
    fn resilience_summary_lists_events_in_order() {
        use crate::ledger::{ResilienceEvent, ResilienceEventKind};
        let l = Ledger::new();
        assert_eq!(resilience_summary(&l), "", "no events, no section");
        for (kind, step) in [
            (ResilienceEventKind::Checkpoint, 0),
            (ResilienceEventKind::FaultDetected, 6),
            (ResilienceEventKind::Rollback, 4),
            (ResilienceEventKind::Replay, 6),
        ] {
            l.record_event(ResilienceEvent {
                kind,
                rank: 0,
                step,
                wave: 1,
                wall: Duration::from_millis(2),
                detail: format!("at step {step}"),
            });
        }
        let text = resilience_summary(&l);
        let ck = text.find("checkpoint").unwrap();
        let fd = text.find("fault_detected").unwrap();
        let rb = text.find("rollback").unwrap();
        let rp = text.find("replay").unwrap();
        assert!(ck < fd && fd < rb && rb < rp);
        assert!(text.contains("2.000"));
    }

    #[test]
    fn hot_share_matches_the_papers_structure() {
        // 30+20 of 60 ms => 83%.
        let share = hot_kernel_share(&ledger_with_data());
        assert!((share - 50.0 / 60.0).abs() < 1e-12);
    }
}
