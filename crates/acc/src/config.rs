//! Launch configuration — the directive clauses of §III-C.

/// How loop iterations are distributed, mirroring OpenACC's hierarchy of
/// gangs (CUDA blocks), workers (warps), and vectors (threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Bare `parallel loop`: iterations split across gangs only, each gang
    /// using a single vector lane. The paper identifies this default as the
    /// under-utilizing configuration.
    GangOnly,
    /// `parallel loop gang vector`: iterations split across gangs *and*
    /// vector lanes with a fixed vector length — the configuration appended
    /// to every parallel loop in MFC.
    GangVector,
}

/// Whether `private` arrays inside the kernel have a compile-time size.
///
/// §III-D: CCE on MI250X allocated runtime-sized private arrays on device
/// *per thread block at launch*, with a device→host→device handshake; fixing
/// one O(1)-element array's size took a kernel from 90% of total runtime to
/// 3%.  The CPU analog of a device-side allocation is a per-iteration heap
/// allocation, which is what [`PrivateMode::RuntimeSized`] selects in the
/// ablation kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateMode {
    /// Size known at compile time: private storage lives on the stack.
    CompileTimeSized,
    /// Size known only at run time: private storage is heap-allocated per
    /// iteration (the device-side-allocation analog).
    RuntimeSized,
}

/// Everything the directives in Listing 1 express about one kernel.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Kernel name; ledger entries aggregate by this label.
    pub label: &'static str,
    /// Gang/vector distribution.
    pub parallelism: Parallelism,
    /// Number of collapsed loops (`collapse(n)`); purely descriptive here —
    /// callers pass the already-collapsed iteration count — but recorded so
    /// profiles can report the launch shape.
    pub collapse: u8,
    /// Whether the innermost O(1) field loop is serialized (`loop seq`).
    pub seq_inner: bool,
    /// Private-array sizing mode.
    pub private: PrivateMode,
}

impl LaunchConfig {
    /// The configuration MFC converged on for its hot kernels:
    /// `gang vector collapse(3)` with a `seq` inner field loop and
    /// compile-time-sized private arrays.
    pub fn tuned(label: &'static str) -> Self {
        LaunchConfig {
            label,
            parallelism: Parallelism::GangVector,
            collapse: 3,
            seq_inner: true,
            private: PrivateMode::CompileTimeSized,
        }
    }

    /// The untuned default (`parallel loop` with no clauses) the paper
    /// starts from.
    pub fn untuned(label: &'static str) -> Self {
        LaunchConfig {
            label,
            parallelism: Parallelism::GangOnly,
            collapse: 1,
            seq_inner: false,
            private: PrivateMode::CompileTimeSized,
        }
    }

    pub fn with_collapse(mut self, n: u8) -> Self {
        self.collapse = n;
        self
    }

    pub fn with_private(mut self, mode: PrivateMode) -> Self {
        self.private = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_matches_paper_directives() {
        let c = LaunchConfig::tuned("m_riemann_solve");
        assert_eq!(c.parallelism, Parallelism::GangVector);
        assert_eq!(c.collapse, 3);
        assert!(c.seq_inner);
        assert_eq!(c.private, PrivateMode::CompileTimeSized);
    }

    #[test]
    fn builders_override_fields() {
        let c = LaunchConfig::untuned("k")
            .with_collapse(4)
            .with_private(PrivateMode::RuntimeSized);
        assert_eq!(c.collapse, 4);
        assert_eq!(c.private, PrivateMode::RuntimeSized);
        assert_eq!(c.parallelism, Parallelism::GangOnly);
    }
}
