//! Data regions — `enter data` / `update device` / `update host`.
//!
//! Host and "device" share memory here, so a transfer is a ledger entry
//! rather than a copy.  What matters for the reproduction is *when* the
//! solver believes a transfer is required: the paper's key I/O claim is that
//! after initialization the state lives on the device and comes back only
//! every O(10^3) steps, making transfer cost negligible.  The ledger lets
//! tests assert exactly that.

use std::ops::{Deref, DerefMut};

use crate::exec::Context;
use crate::ledger::TransferDirection;

/// A buffer with a device residency lifecycle.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T: Copy> {
    data: Vec<T>,
    resident: bool,
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocate host-side storage; not yet device-resident.
    pub fn from_vec(data: Vec<T>) -> Self {
        DeviceBuffer {
            data,
            resident: false,
        }
    }

    /// `!$acc enter data copyin(...)`: make the buffer device-resident,
    /// recording the host-to-device transfer.
    pub fn enter_data(&mut self, ctx: &Context) {
        assert!(!self.resident, "buffer already device-resident");
        ctx.ledger()
            .record_transfer(TransferDirection::HostToDevice, self.bytes());
        self.resident = true;
    }

    /// `!$acc update device(...)`: push host changes to the device.
    pub fn update_device(&mut self, ctx: &Context) {
        assert!(self.resident, "update device before enter data");
        ctx.ledger()
            .record_transfer(TransferDirection::HostToDevice, self.bytes());
    }

    /// `!$acc update host(...)`: pull device state back (e.g. for I/O).
    pub fn update_host(&mut self, ctx: &Context) {
        assert!(self.resident, "update host before enter data");
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, self.bytes());
    }

    /// `!$acc exit data copyout(...)`: final copy back, end residency.
    pub fn exit_data(&mut self, ctx: &Context) {
        assert!(self.resident, "exit data before enter data");
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, self.bytes());
        self.resident = false;
    }

    /// Whether the buffer currently has a device image.
    pub fn is_resident(&self) -> bool {
        self.resident
    }

    /// Size in bytes (what a transfer moves).
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume and return the host buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// Zero-initialized buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        DeviceBuffer::from_vec(vec![T::default(); n])
    }
}

impl<T: Copy> Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Copy> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_records_transfers() {
        let ctx = Context::serial();
        let mut b = DeviceBuffer::<f64>::zeros(100);
        b.enter_data(&ctx);
        b.update_host(&ctx.clone());
        b.update_device(&ctx);
        b.exit_data(&ctx);
        let h2d = ctx.ledger().transfers(TransferDirection::HostToDevice);
        let d2h = ctx.ledger().transfers(TransferDirection::DeviceToHost);
        assert_eq!(h2d.count, 2);
        assert_eq!(h2d.bytes, 2 * 800);
        assert_eq!(d2h.count, 2);
    }

    #[test]
    #[should_panic]
    fn double_enter_data_panics() {
        let ctx = Context::serial();
        let mut b = DeviceBuffer::<f64>::zeros(1);
        b.enter_data(&ctx);
        b.enter_data(&ctx);
    }

    #[test]
    #[should_panic]
    fn update_before_enter_panics() {
        let ctx = Context::serial();
        let mut b = DeviceBuffer::<f64>::zeros(1);
        b.update_device(&ctx);
    }

    #[test]
    fn deref_gives_slice_access() {
        let mut b = DeviceBuffer::from_vec(vec![1.0, 2.0, 3.0]);
        b[1] = 5.0;
        assert_eq!(&b[..], &[1.0, 5.0, 3.0]);
        assert_eq!(b.bytes(), 24);
    }
}
