//! Disjoint-write shared views for gang-parallel kernel bodies.
//!
//! A `Fn + Sync` kernel body cannot capture `&mut [f64]`, yet every sweep
//! kernel writes strided slots of a shared output buffer (one face, one
//! cell, one line at a time). [`ParSlice`] is the device-memory analog: a
//! shared view whose slots are written through relaxed atomic stores —
//! plain `mov`s on every 64-bit platform, so the store is the exact bit
//! pattern of the `f64` and the kernel arithmetic is untouched.
//!
//! The determinism contract matches a device global-memory buffer: each
//! index must be written by **at most one** gang per launch. Under that
//! contract the final buffer contents are independent of gang count and
//! scheduling, which is what makes multi-worker launches bitwise identical
//! to [`crate::Context::serial`]. A violated contract cannot cause UB
//! (every access is atomic) — it shows up as nondeterminism, which the
//! thread-equivalence suite would catch.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::vector::Lane;

// `ParSlice::new` reinterprets `&mut [f64]` as `&[AtomicU64]`; both must
// agree on size and alignment (they do on every target with 64-bit
// atomics).
const _: () = assert!(
    std::mem::size_of::<AtomicU64>() == std::mem::size_of::<f64>()
        && std::mem::align_of::<AtomicU64>() == std::mem::align_of::<f64>()
);

/// A shared, disjoint-write view of an `f64` buffer for gang bodies.
#[derive(Clone, Copy)]
pub struct ParSlice<'a> {
    words: &'a [AtomicU64],
}

impl<'a> ParSlice<'a> {
    /// Borrow `s` as a shared gang-writable view. The `&mut` receiver
    /// guarantees no other live borrow observes the buffer mid-launch.
    #[inline]
    pub fn new(s: &'a mut [f64]) -> Self {
        // SAFETY: AtomicU64 and f64 have identical size and alignment
        // (asserted above), the exclusive borrow is held for 'a, and every
        // subsequent access goes through atomic operations.
        let words = unsafe { &*(s as *mut [f64] as *const [AtomicU64]) };
        ParSlice { words }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read slot `i` (the exact bits last stored).
    #[inline(always)]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.words[i].load(Ordering::Relaxed))
    }

    /// Write slot `i`. At most one gang may write a given slot per launch.
    #[inline(always)]
    pub fn set(&self, i: usize, v: f64) {
        self.words[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// `slot += v` for a slot owned by the calling gang (read-modify-write
    /// without atomicity across gangs — ownership is the contract).
    #[inline(always)]
    pub fn add(&self, i: usize, v: f64) {
        self.set(i, self.get(i) + v);
    }

    /// Lane load of `L::WIDTH` consecutive slots starting at `i`.
    #[inline(always)]
    pub fn get_lanes<L: Lane>(&self, i: usize) -> L {
        L::from_lanes(|lane| self.get(i + lane))
    }

    /// Lane store into `L::WIDTH` consecutive slots starting at `i`.
    #[inline(always)]
    pub fn set_lanes<L: Lane>(&self, i: usize, v: L) {
        for lane in 0..L::WIDTH {
            self.set(i + lane, v.lane(lane));
        }
    }

    /// Lanewise `+=` into consecutive slots starting at `i`. Lane order is
    /// immaterial: the slots are disjoint.
    #[inline(always)]
    pub fn add_lanes<L: Lane>(&self, i: usize, v: L) {
        for lane in 0..L::WIDTH {
            self.add(i + lane, v.lane(lane));
        }
    }

    /// Lanewise `+=` into slots `i, i + stride, ..` — the cell stride of a
    /// canonical-order divergence store when the sweep axis is not x.
    #[inline(always)]
    pub fn add_lanes_strided<L: Lane>(&self, i: usize, stride: usize, v: L) {
        for lane in 0..L::WIDTH {
            self.add(i + lane * stride, v.lane(lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_bits() {
        let mut buf = vec![0.0f64; 8];
        let v = ParSlice::new(&mut buf);
        for (i, x) in [1.5, -0.0, f64::MIN_POSITIVE, 3.0e300, f64::INFINITY]
            .iter()
            .enumerate()
        {
            v.set(i, *x);
            assert_eq!(v.get(i).to_bits(), x.to_bits());
        }
        v.add(0, 2.5);
        assert_eq!(v.get(0), 4.0);
        assert_eq!(buf[0], 4.0);
    }

    #[test]
    fn concurrent_disjoint_writes_land() {
        let mut buf = vec![0.0f64; 4096];
        let v = ParSlice::new(&mut buf);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in (t..4096).step_by(4) {
                        v.set(i, i as f64);
                    }
                });
            }
        });
        assert!(buf.iter().enumerate().all(|(i, &x)| x == i as f64));
    }
}
