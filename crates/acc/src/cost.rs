//! Analytic per-kernel cost declarations.
//!
//! `nsight-compute` and `rocprof` report FLOPs and DRAM traffic per kernel;
//! with no hardware counters available we declare the counts analytically at
//! each launch site.  Counts are per *iteration* of the collapsed loop
//! (usually per cell per sweep), derived from the arithmetic in the kernel
//! body, and are what places each kernel on the roofline in Fig. 1.

use serde::{Deserialize, Serialize};

/// Which of the paper's kernel families a launch belongs to.
///
/// Figures 6–7 break grind time into exactly these categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// WENO reconstruction (compute-bound on V100).
    Weno,
    /// HLLC approximate Riemann solve (memory-bound everywhere).
    Riemann,
    /// Array packing / transposes for coalesced access.
    Pack,
    /// Time-stepper AXPY-type updates.
    Update,
    /// Halo buffer pack/unpack for MPI.
    Halo,
    /// Orchestration of a fused pencil sweep (pack→WENO→Riemann→update in
    /// one cache-resident pass); the per-stage work is still recorded under
    /// the stage classes above so breakdown figures keep decomposing.
    Fused,
    /// Everything else (BCs, sources, EOS sweeps, ...).
    Other,
}

impl KernelClass {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Weno => "WENO",
            KernelClass::Riemann => "Riemann",
            KernelClass::Pack => "Pack",
            KernelClass::Update => "Update",
            KernelClass::Halo => "Halo",
            KernelClass::Fused => "Fused",
            KernelClass::Other => "Other",
        }
    }

    pub const ALL: [KernelClass; 7] = [
        KernelClass::Weno,
        KernelClass::Riemann,
        KernelClass::Pack,
        KernelClass::Update,
        KernelClass::Halo,
        KernelClass::Fused,
        KernelClass::Other,
    ];
}

/// Declared cost of one iteration of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    pub class: KernelClass,
    /// Double-precision floating-point operations per iteration.
    pub flops_per_item: f64,
    /// Bytes read from (device) memory per iteration, assuming a cold cache.
    pub bytes_read_per_item: f64,
    /// Bytes written per iteration.
    pub bytes_written_per_item: f64,
}

impl KernelCost {
    pub fn new(class: KernelClass, flops: f64, read: f64, written: f64) -> Self {
        KernelCost {
            class,
            flops_per_item: flops,
            bytes_read_per_item: read,
            bytes_written_per_item: written,
        }
    }

    /// Total bytes moved per iteration.
    #[inline]
    pub fn bytes_per_item(&self) -> f64 {
        self.bytes_read_per_item + self.bytes_written_per_item
    }

    /// Arithmetic intensity in FLOP/byte — the roofline x-axis.
    #[inline]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops_per_item / self.bytes_per_item()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_intensity_is_flops_over_total_bytes() {
        let c = KernelCost::new(KernelClass::Weno, 120.0, 40.0, 8.0);
        assert!((c.arithmetic_intensity() - 120.0 / 48.0).abs() < 1e-15);
    }

    #[test]
    fn class_names_are_unique() {
        let names: std::collections::HashSet<_> =
            KernelClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), KernelClass::ALL.len());
    }
}
