//! A directive-style accelerator execution model.
//!
//! OpenACC offloading is not available from Rust, and this machine has no
//! GPU, so this crate reproduces the *structure* of the paper's offload
//! layer instead of its hardware:
//!
//! * [`LaunchConfig`] mirrors the directive clauses the paper tunes —
//!   `gang vector`, `collapse(n)`, `loop seq` on the inner field loop, and
//!   whether `private` arrays are compile-time sized (§III-C/D).
//! * [`Context::launch`] executes a kernel body over a collapsed iteration
//!   space serially (the "CPU build without OpenACC" path the paper keeps
//!   working); `launch_par`/`launch_chunks`/`launch_max` split the space
//!   across worker threads. All of them record wall time plus
//!   caller-declared FLOP/byte counts in a [`Ledger`].
//! * [`DeviceBuffer`] reproduces OpenACC data regions: `enter data`,
//!   `update device/host`, `host_data use_device`.  Host and "device" are
//!   the same memory here, so the copies are ledger entries rather than
//!   physical transfers — exactly the events an OpenACC profile records.
//!
//! The ledger is what the performance model (`mfc-perfmodel`) consumes to
//! place each kernel on a device roofline: per-kernel arithmetic intensity
//! comes from *real counts of the real solver*, only the device clock is
//! synthetic.

pub mod config;
pub mod cost;
pub mod data;
pub mod exec;
pub mod ledger;
pub mod queue;
pub mod report;
pub mod shared;
pub mod vector;

pub use config::{LaunchConfig, Parallelism, PrivateMode};
pub use cost::{KernelClass, KernelCost};
pub use data::DeviceBuffer;
pub use exec::{Context, PAR_MIN_ITEMS};
pub use ledger::{
    KernelStats, Ledger, ResilienceEvent, ResilienceEventKind, TransferDirection, TransferStats,
};
pub use queue::QueueSet;
pub use report::{hot_kernel_share, kernel_summary, resilience_summary, transfer_summary};
pub use shared::ParSlice;
pub use vector::{
    hw_lane_width, validate_width, Lane, LaneGangBody, LaneKernel, LaneMaxKernel, VecF64,
    DEFAULT_WIDTH, MAX_WIDTH,
};
