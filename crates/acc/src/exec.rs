//! Kernel execution — the `!$acc parallel loop` substitute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::config::LaunchConfig;
use crate::cost::KernelCost;
use crate::ledger::Ledger;

/// Below this many work items a parallel launch falls back to the serial
/// loop: the fork/join overhead of scoped threads would dominate.
const PAR_MIN_ITEMS: usize = 1024;

/// An execution context: one "device" plus its profiling ledger.
///
/// With more than one worker thread, the parallel entry points
/// ([`Context::launch_par`], [`Context::launch_chunks`],
/// [`Context::launch_max`]) split the collapsed iteration space into
/// contiguous blocks, one per worker (gangs ≙ blocks, vector lanes ≙ the
/// iterations inside a block); with a single worker every loop runs
/// serially — the paper's "compiled without OpenACC" CPU path.
#[derive(Clone)]
pub struct Context {
    ledger: Arc<Ledger>,
    workers: usize,
}

impl Context {
    /// A context using every available worker thread.
    pub fn new() -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// A strictly serial context (reference results, bitwise determinism).
    pub fn serial() -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: 1,
        }
    }

    /// A context with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: workers.max(1),
        }
    }

    /// The profiling ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Share the ledger (e.g. across solver sub-components).
    pub fn ledger_arc(&self) -> Arc<Ledger> {
        Arc::clone(&self.ledger)
    }

    /// Number of worker threads the context schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Partition `0..n` into up to `workers` contiguous blocks.
    fn blocks(&self, n: usize) -> Vec<(usize, usize)> {
        let threads = self.workers.min(n.max(1));
        let base = n / threads;
        let extra = n % threads;
        let mut out = Vec::with_capacity(threads);
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            out.push((start, start + len));
            start += len;
        }
        out
    }

    /// Launch a kernel over a collapsed iteration space of `n` items,
    /// running the body **sequentially on the calling thread** in index
    /// order, regardless of the worker count.
    ///
    /// This is the entry point for bodies that mutate captured state
    /// (`FnMut`), which cannot be split across threads. Use
    /// [`Context::launch_par`] for shared-read bodies (`Fn + Sync`) that
    /// should scale with `workers()`, or [`Context::launch_chunks`] when
    /// the output decomposes into disjoint slices.
    pub fn launch<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, mut body: F)
    where
        F: FnMut(usize),
    {
        let t0 = Instant::now();
        for i in 0..n {
            body(i);
        }
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
    }

    /// Launch a side-effect kernel over `n` items, splitting the
    /// iteration space across the context's workers.
    ///
    /// The body observes iteration indices in an unspecified order (as on
    /// a device); it must not rely on sequencing between iterations, and
    /// any writes it performs must target disjoint locations per index
    /// (interior mutability is the body's responsibility). Small spaces
    /// and single-worker contexts run the serial in-order loop.
    pub fn launch_par<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let t0 = Instant::now();
        if self.workers > 1 && n >= PAR_MIN_ITEMS {
            let body = &body;
            std::thread::scope(|s| {
                for (lo, hi) in self.blocks(n) {
                    s.spawn(move || {
                        for i in lo..hi {
                            body(i);
                        }
                    });
                }
            });
        } else {
            for i in 0..n {
                body(i);
            }
        }
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
    }

    /// Launch a kernel whose output decomposes into disjoint `chunk_len`
    /// slices of `out` — the shape of every sweep kernel in the solver
    /// (one contiguous coalesced line per (j,k,field) tuple).
    ///
    /// The body receives `(chunk_index, chunk)` and may only write its own
    /// chunk, which is what makes the parallel execution race-free by
    /// construction. Iteration count recorded in the ledger is the number
    /// of chunks.
    pub fn launch_chunks<T, F>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        out: &mut [T],
        chunk_len: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert_eq!(
            out.len() % chunk_len,
            0,
            "output length {} is not a multiple of chunk length {}",
            out.len(),
            chunk_len
        );
        let n = out.len() / chunk_len;
        let t0 = Instant::now();
        if self.workers > 1 && out.len() >= PAR_MIN_ITEMS && n > 1 {
            // One contiguous run of whole chunks per worker.
            let body = &body;
            std::thread::scope(|s| {
                let mut rest = out;
                let mut first = 0;
                for (lo, hi) in self.blocks(n) {
                    let (mine, tail) = rest.split_at_mut((hi - lo) * chunk_len);
                    rest = tail;
                    s.spawn(move || {
                        for (off, c) in mine.chunks_exact_mut(chunk_len).enumerate() {
                            body(lo + off, c);
                        }
                    });
                    first += hi - lo;
                }
                debug_assert_eq!(first, n);
            });
        } else {
            for (i, c) in out.chunks_exact_mut(chunk_len).enumerate() {
                body(i, c);
            }
        }
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
    }

    /// Launch a reduction kernel returning the maximum of the body over the
    /// iteration space (used for the CFL time-step bound).
    ///
    /// The parallel path reduces each contiguous block on its own worker
    /// and then folds the per-block maxima in block order; since `max` is
    /// associative and commutative this is bitwise-identical to the serial
    /// fold for any worker count.
    pub fn launch_max<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let t0 = Instant::now();
        let result = if self.workers > 1 && n >= PAR_MIN_ITEMS {
            let body = &body;
            let blocks = self.blocks(n);
            let partials: Vec<AtomicU64> = blocks
                .iter()
                .map(|_| AtomicU64::new(f64::NEG_INFINITY.to_bits()))
                .collect();
            std::thread::scope(|s| {
                for (b, &(lo, hi)) in blocks.iter().enumerate() {
                    let slot = &partials[b];
                    s.spawn(move || {
                        let m = (lo..hi).map(body).fold(f64::NEG_INFINITY, f64::max);
                        slot.store(m.to_bits(), Ordering::Relaxed);
                    });
                }
            });
            partials
                .iter()
                .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            (0..n).map(&body).fold(f64::NEG_INFINITY, f64::max)
        };
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
        result
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelClass;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cost() -> KernelCost {
        KernelCost::new(KernelClass::Other, 1.0, 8.0, 8.0)
    }

    #[test]
    fn launch_visits_every_index_once() {
        let ctx = Context::serial();
        let mut seen = vec![0u32; 100];
        ctx.launch(&LaunchConfig::tuned("t"), cost(), 100, |i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn launch_records_ledger_entry() {
        let ctx = Context::serial();
        ctx.launch(&LaunchConfig::tuned("kern"), cost(), 42, |_| {});
        let s = ctx.ledger().kernel("kern").unwrap();
        assert_eq!(s.items, 42);
        assert_eq!(s.launches, 1);
    }

    #[test]
    fn launch_par_visits_every_index_once() {
        // Above the grain threshold so a multi-worker context really forks.
        let n = 4 * PAR_MIN_ITEMS;
        let ctx = Context::with_workers(4);
        let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        ctx.launch_par(&LaunchConfig::tuned("p"), cost(), n, |i| {
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(ctx.ledger().kernel("p").unwrap().items, n as u64);
    }

    #[test]
    fn launch_chunks_gives_disjoint_chunks() {
        let ctx = Context::new();
        let mut out = vec![0.0f64; 64];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 8, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 8 + j) as f64;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        assert_eq!(ctx.ledger().kernel("c").unwrap().items, 8);
    }

    #[test]
    fn launch_chunks_parallel_matches_serial() {
        let chunk = 16;
        let n = 8 * PAR_MIN_ITEMS;
        let fill = |i: usize, c: &mut [f64]| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 1013) as f64 * 0.5;
            }
        };
        let mut serial = vec![0.0f64; n];
        Context::serial().launch_chunks(
            &LaunchConfig::tuned("c"),
            cost(),
            &mut serial,
            chunk,
            fill,
        );
        let mut par = vec![0.0f64; n];
        Context::with_workers(5).launch_chunks(
            &LaunchConfig::tuned("c"),
            cost(),
            &mut par,
            chunk,
            fill,
        );
        assert_eq!(serial, par);
    }

    #[test]
    #[should_panic]
    fn launch_chunks_rejects_non_multiple() {
        let ctx = Context::serial();
        let mut out = vec![0.0f64; 10];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 3, |_, _| {});
    }

    #[test]
    fn launch_max_reduces_correctly() {
        let ctx = Context::new();
        let m = ctx.launch_max(&LaunchConfig::tuned("m"), cost(), 1000, |i| {
            -((i as f64) - 500.5).abs()
        });
        assert_eq!(m, -0.5);
    }

    #[test]
    fn launch_max_parallel_is_bitwise_deterministic() {
        let n = 8 * PAR_MIN_ITEMS;
        let body = |i: usize| ((i as f64) * 0.7315).sin() * 1.0e-3 + (i % 97) as f64;
        let serial = Context::serial().launch_max(&LaunchConfig::tuned("m"), cost(), n, body);
        for workers in [2, 3, 8] {
            let par = Context::with_workers(workers).launch_max(
                &LaunchConfig::tuned("m"),
                cost(),
                n,
                body,
            );
            assert_eq!(serial.to_bits(), par.to_bits(), "workers = {workers}");
        }
    }

    #[test]
    fn launch_max_empty_space_is_neg_infinity() {
        let ctx = Context::serial();
        let m = ctx.launch_max(&LaunchConfig::tuned("m0"), cost(), 0, |_| 1.0);
        assert_eq!(m, f64::NEG_INFINITY);
    }
}
