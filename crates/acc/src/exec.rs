//! Kernel execution — the `!$acc parallel loop` substitute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfc_trace::{Category, LedgerRow, SpanGuard, TraceHandle};

use crate::config::LaunchConfig;
use crate::cost::KernelCost;
use crate::ledger::Ledger;
use crate::vector::{validate_width, Lane, LaneGangBody, LaneKernel, LaneMaxKernel, DEFAULT_WIDTH};
use crate::with_lane_width;

/// Below this many work items a parallel launch falls back to the serial
/// loop: the fork/join overhead of scoped threads would dominate.
pub const PAR_MIN_ITEMS: usize = 1024;

/// An execution context: one "device" plus its profiling ledger.
///
/// With more than one worker thread, the parallel entry points
/// ([`Context::launch_par`], [`Context::launch_chunks`],
/// [`Context::launch_max`]) split the collapsed iteration space into
/// contiguous blocks, one per worker (gangs ≙ blocks, vector lanes ≙ the
/// iterations inside a block); with a single worker every loop runs
/// serially — the paper's "compiled without OpenACC" CPU path.
#[derive(Clone)]
pub struct Context {
    ledger: Arc<Ledger>,
    workers: usize,
    /// Lane width of the vector entry points ([`Context::launch_vec`] and
    /// friends); validated power of two ≤ `vector::MAX_WIDTH`. Results
    /// are bitwise identical at every width by the [`Lane`] contract.
    vector_width: usize,
    /// Full lane packets / scalar-tail elements executed so far, shared
    /// across clones like the ledger (the remainder-fraction counter the
    /// perfmodel's effective-width term consumes).
    lane_packets: Arc<AtomicU64>,
    lane_tail: Arc<AtomicU64>,
    /// Measured-profile recording endpoint; `None` (the default) keeps
    /// every launch on an untraced fast path — one branch per launch.
    tracer: Option<Arc<TraceHandle>>,
}

impl Context {
    /// A context using every available worker thread.
    pub fn new() -> Self {
        Context::with_workers(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A strictly serial context (reference results, bitwise determinism).
    pub fn serial() -> Self {
        Context::with_workers(1)
    }

    /// A context with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: workers.max(1),
            vector_width: DEFAULT_WIDTH,
            lane_packets: Arc::new(AtomicU64::new(0)),
            lane_tail: Arc::new(AtomicU64::new(0)),
            tracer: None,
        }
    }

    /// Builder form: set the lane width of the vector entry points.
    ///
    /// # Panics
    /// On an invalid width (not a power of two, or > `MAX_WIDTH`); callers
    /// taking user input validate with [`crate::vector::validate_width`]
    /// first and surface a typed configuration error instead.
    pub fn with_vector_width(mut self, width: usize) -> Self {
        self.set_vector_width(width);
        self
    }

    /// Set the lane width (same validation as [`Context::with_vector_width`]).
    pub fn set_vector_width(&mut self, width: usize) {
        if let Err(e) = validate_width(width) {
            panic!("{e}");
        }
        self.vector_width = width;
    }

    /// Lane width of the vector entry points.
    pub fn vector_width(&self) -> usize {
        self.vector_width
    }

    /// The profiling ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Share the ledger (e.g. across solver sub-components).
    pub fn ledger_arc(&self) -> Arc<Ledger> {
        Arc::clone(&self.ledger)
    }

    /// Number of worker threads the context schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Elastically change the worker count (clamped to ≥ 1).
    ///
    /// Gang partitioning is a pure function of the count and results are
    /// bitwise identical at every count, so a scheduler may resize a live
    /// context between launches (e.g. at solver step boundaries) without
    /// perturbing numerics. Re-emits the `threads` counter when a tracer
    /// is attached so the timeline records the resize.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers == self.workers {
            return;
        }
        self.workers = workers;
        if let Some(t) = &self.tracer {
            t.counter("threads", self.workers as f64);
        }
    }

    /// Attach a per-rank trace handle: every subsequent launch also emits
    /// a kernel event carrying the ledger's per-launch byte/FLOP products.
    /// A `threads` counter is emitted immediately so `mfc-trace-report`
    /// shows how many workers the context actually schedules onto.
    pub fn set_tracer(&mut self, handle: Arc<TraceHandle>) {
        handle.counter("threads", self.workers as f64);
        handle.counter("vector_width", self.vector_width as f64);
        self.tracer = Some(handle);
    }

    /// Builder form of [`Context::set_tracer`].
    pub fn with_tracer(mut self, handle: Arc<TraceHandle>) -> Self {
        self.set_tracer(handle);
        self
    }

    /// The attached trace handle, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<TraceHandle>> {
        self.tracer.as_ref()
    }

    /// Open a phase span on the attached trace (no-op when untraced).
    pub fn span(&self, name: &'static str, cat: Category) -> Option<SpanGuard> {
        self.tracer.as_ref().map(|t| t.span(name, cat))
    }

    /// Record a point-in-time marker on the attached trace.
    pub fn trace_instant(&self, name: &'static str, cat: Category) {
        if let Some(t) = &self.tracer {
            t.instant(name, cat);
        }
    }

    /// Sample a scalar counter on the attached trace.
    pub fn trace_counter(&self, name: &'static str, value: f64) {
        if let Some(t) = &self.tracer {
            t.counter(name, value);
        }
    }

    /// Attach this context's ledger snapshot to the trace so exporters can
    /// cross-check traced aggregates against the analytic totals. Call at
    /// the end of a traced run.
    /// Account lane tiling of a vector-executed launch: `full_packets`
    /// whole packets plus `tail_elems` scalar-remainder elements. The
    /// vector entry points do this themselves; bodies that tile inside a
    /// gang scope (the fused pencil engine, the health scan) report here.
    pub fn note_lane_tiling(&self, full_packets: u64, tail_elems: u64) {
        self.lane_packets.fetch_add(full_packets, Ordering::Relaxed);
        self.lane_tail.fetch_add(tail_elems, Ordering::Relaxed);
    }

    /// Cumulative `(full_packets, tail_elems)` over all vector launches.
    pub fn lane_stats(&self) -> (u64, u64) {
        (
            self.lane_packets.load(Ordering::Relaxed),
            self.lane_tail.load(Ordering::Relaxed),
        )
    }

    /// Fraction of vector-launch elements that fell into scalar remainder
    /// tails (0 when no vector launch ran), and the effective lane width
    /// `W·full_packets/(full_packets + tail_elems)` the perfmodel uses.
    pub fn lane_efficiency(&self) -> (f64, f64) {
        let (packets, tail) = self.lane_stats();
        let elems = self.vector_width as u64 * packets + tail;
        if elems == 0 {
            return (0.0, self.vector_width as f64);
        }
        let tail_fraction = tail as f64 / elems as f64;
        let effective = self.vector_width as f64 * packets as f64 / (packets + tail) as f64;
        (tail_fraction, effective)
    }

    pub fn flush_ledger_to_trace(&self) {
        if let Some(t) = &self.tracer {
            let (packets, tail) = self.lane_stats();
            if packets + tail > 0 {
                let (tail_fraction, _) = self.lane_efficiency();
                t.counter("lane_tail_fraction", tail_fraction);
            }
            let rows = self
                .ledger
                .kernel_stats()
                .into_iter()
                .map(|s| LedgerRow {
                    label: s.label,
                    launches: s.launches,
                    items: s.items,
                    flops: s.flops,
                    bytes_read: s.bytes_read,
                    bytes_written: s.bytes_written,
                    wall_ns: s.wall.as_nanos() as u64,
                })
                .collect();
            t.attach_ledger(rows);
        }
    }

    /// Ledger bookkeeping shared by every launch entry point, plus the
    /// traced kernel event when a handle is attached. The float products
    /// passed to the trace are exactly the terms `record_launch`
    /// accumulates, so per-label sums of the event stream reconcile with
    /// the ledger bitwise.
    fn record(&self, cfg: &LaunchConfig, cost: KernelCost, items: u64, gangs: usize, t0: Instant) {
        self.record_external_gangs(cfg.label, cost, items, gangs as u32, t0, t0.elapsed());
    }

    /// [`Context::record`] for the vector entry points: the traced event
    /// additionally carries the configured lane width.
    fn record_vec(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        items: u64,
        gangs: usize,
        t0: Instant,
    ) {
        self.record_external_vec(
            cfg.label,
            cost,
            items,
            gangs as u32,
            self.vector_width as u32,
            t0,
            t0.elapsed(),
        );
    }

    /// Record a launch whose body ran outside the launch entry points
    /// (e.g. the BLAS-style reshape transposes, which call a library
    /// routine rather than a kernel body). Feeds the ledger and the
    /// attached trace exactly like [`Context::launch`] does, so traced
    /// aggregates still reconcile bitwise.
    pub fn record_external(&self, label: &'static str, cost: KernelCost, items: u64, t0: Instant) {
        self.record_external_timed(label, cost, items, t0, t0.elapsed());
    }

    /// Variant of [`Context::record_external`] taking an explicit
    /// duration, for stage timings accumulated across inner batches (the
    /// fused sweep records each stage once per axis with its summed
    /// time). `start` places the event on the timeline.
    pub fn record_external_timed(
        &self,
        label: &'static str,
        cost: KernelCost,
        items: u64,
        start: Instant,
        wall: Duration,
    ) {
        self.record_external_gangs(label, cost, items, 1, start, wall);
    }

    /// Variant of [`Context::record_external_timed`] that annotates the
    /// traced kernel event with the gang count the launch actually used.
    /// The ledger row is unchanged — ONE row per launch regardless of how
    /// many gangs ran it — so ledger/trace reconciliation survives
    /// threaded execution untouched.
    pub fn record_external_gangs(
        &self,
        label: &'static str,
        cost: KernelCost,
        items: u64,
        gangs: u32,
        start: Instant,
        wall: Duration,
    ) {
        self.record_external_vec(label, cost, items, gangs, 1, start, wall);
    }

    /// Variant of [`Context::record_external_gangs`] that also annotates
    /// the traced kernel event with the lane width the launch executed at.
    /// Like `gangs`, `lanes` is an annotation only: FLOP/byte counts are
    /// per-element, so ledger/trace reconciliation stays exact at every
    /// width.
    #[allow(clippy::too_many_arguments)]
    pub fn record_external_vec(
        &self,
        label: &'static str,
        cost: KernelCost,
        items: u64,
        gangs: u32,
        lanes: u32,
        start: Instant,
        wall: Duration,
    ) {
        self.ledger.record_launch(label, cost, items, wall);
        if let Some(t) = &self.tracer {
            t.kernel_vec(
                label,
                items,
                gangs,
                lanes,
                cost.flops_per_item * items as f64,
                cost.bytes_read_per_item * items as f64,
                cost.bytes_written_per_item * items as f64,
                start,
                wall,
            );
        }
    }

    /// Partition `0..n` into up to `workers` contiguous gang blocks (the
    /// fixed gang→index mapping every parallel entry point uses): `n %
    /// gangs` leading blocks carry one extra item, so the decomposition is
    /// a pure function of `(n, workers)` — never of scheduling.
    pub fn gang_blocks(&self, n: usize) -> Vec<(usize, usize)> {
        let threads = self.workers.min(n.max(1));
        let base = n / threads;
        let extra = n % threads;
        let mut out = Vec::with_capacity(threads);
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            out.push((start, start + len));
            start += len;
        }
        out
    }

    /// Launch a kernel over a collapsed iteration space of `n` items,
    /// running the body **sequentially on the calling thread** in index
    /// order, regardless of the worker count.
    ///
    /// This is the entry point for bodies that mutate captured state
    /// (`FnMut`), which cannot be split across threads. Use
    /// [`Context::launch_par`] for shared-read bodies (`Fn + Sync`) that
    /// should scale with `workers()`, or [`Context::launch_chunks`] when
    /// the output decomposes into disjoint slices.
    pub fn launch<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, mut body: F)
    where
        F: FnMut(usize),
    {
        let t0 = Instant::now();
        for i in 0..n {
            body(i);
        }
        self.record(cfg, cost, n as u64, 1, t0);
    }

    /// Launch a side-effect kernel over `n` items, splitting the
    /// iteration space across the context's workers.
    ///
    /// The body observes iteration indices in an unspecified order (as on
    /// a device); it must not rely on sequencing between iterations, and
    /// any writes it performs must target disjoint locations per index
    /// (interior mutability is the body's responsibility). Small spaces
    /// and single-worker contexts run the serial in-order loop.
    pub fn launch_par<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let t0 = Instant::now();
        let gangs = if self.workers > 1 && n >= PAR_MIN_ITEMS {
            let body = &body;
            let blocks = self.gang_blocks(n);
            let gangs = blocks.len();
            std::thread::scope(|s| {
                for (lo, hi) in blocks {
                    s.spawn(move || {
                        for i in lo..hi {
                            body(i);
                        }
                    });
                }
            });
            gangs
        } else {
            for i in 0..n {
                body(i);
            }
            1
        };
        self.record(cfg, cost, n as u64, gangs, t0);
    }

    /// Launch a kernel whose output decomposes into disjoint `chunk_len`
    /// slices of `out` — the shape of every sweep kernel in the solver
    /// (one contiguous coalesced line per (j,k,field) tuple).
    ///
    /// The body receives `(chunk_index, chunk)` and may only write its own
    /// chunk, which is what makes the parallel execution race-free by
    /// construction. Iteration count recorded in the ledger is the number
    /// of chunks.
    pub fn launch_chunks<T, F>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        out: &mut [T],
        chunk_len: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert_eq!(
            out.len() % chunk_len,
            0,
            "output length {} is not a multiple of chunk length {}",
            out.len(),
            chunk_len
        );
        let n = out.len() / chunk_len;
        let t0 = Instant::now();
        let gangs = if self.workers > 1 && out.len() >= PAR_MIN_ITEMS && n > 1 {
            // One contiguous run of whole chunks per worker.
            let body = &body;
            let blocks = self.gang_blocks(n);
            let gangs = blocks.len();
            std::thread::scope(|s| {
                let mut rest = out;
                let mut first = 0;
                for (lo, hi) in blocks {
                    let (mine, tail) = rest.split_at_mut((hi - lo) * chunk_len);
                    rest = tail;
                    s.spawn(move || {
                        for (off, c) in mine.chunks_exact_mut(chunk_len).enumerate() {
                            body(lo + off, c);
                        }
                    });
                    first += hi - lo;
                }
                debug_assert_eq!(first, n);
            });
            gangs
        } else {
            for (i, c) in out.chunks_exact_mut(chunk_len).enumerate() {
                body(i, c);
            }
            1
        };
        self.record(cfg, cost, n as u64, gangs, t0);
    }

    /// Launch a reduction kernel returning the maximum of the body over the
    /// iteration space (used for the CFL time-step bound).
    ///
    /// The parallel path reduces each contiguous block on its own worker
    /// and then folds the per-block maxima in block order; since `max` is
    /// associative and commutative this is bitwise-identical to the serial
    /// fold for any worker count.
    pub fn launch_max<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let t0 = Instant::now();
        let (result, gangs) = if self.workers > 1 && n >= PAR_MIN_ITEMS {
            let body = &body;
            let blocks = self.gang_blocks(n);
            let partials: Vec<AtomicU64> = blocks
                .iter()
                .map(|_| AtomicU64::new(f64::NEG_INFINITY.to_bits()))
                .collect();
            std::thread::scope(|s| {
                for (b, &(lo, hi)) in blocks.iter().enumerate() {
                    let slot = &partials[b];
                    s.spawn(move || {
                        let m = (lo..hi).map(body).fold(f64::NEG_INFINITY, f64::max);
                        slot.store(m.to_bits(), Ordering::Relaxed);
                    });
                }
            });
            let m = partials
                .iter()
                .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
                .fold(f64::NEG_INFINITY, f64::max);
            (m, blocks.len())
        } else {
            ((0..n).map(&body).fold(f64::NEG_INFINITY, f64::max), 1)
        };
        self.record(cfg, cost, n as u64, gangs, t0);
        result
    }

    /// Launch a lane-vectorized kernel over a `rows × row_len` space —
    /// the `vector` half of `gang vector`: gangs split the rows across
    /// workers, and within each row the columns are tiled into full
    /// packets of [`Context::vector_width`] lanes plus a scalar remainder
    /// tail. Packets never cross a row boundary, so per-row unit-stride
    /// data (a WENO line, a face sweep line) supports in-bounds lane
    /// loads relative to the packet column.
    ///
    /// The kernel body is written once against [`Lane`] and monomorphized
    /// here per width; by the `Lane` contract the results are bitwise
    /// identical at every width and worker count. The traced event is
    /// annotated with the lane width (`lanes`); the ledger row is
    /// unchanged, so reconciliation stays exact.
    pub fn launch_vec<K: LaneKernel>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        rows: usize,
        row_len: usize,
        kernel: &K,
    ) {
        let t0 = Instant::now();
        let w = self.vector_width;
        let gangs = with_lane_width!(w, L => self.run_vec::<L, K>(rows, row_len, kernel));
        self.note_lane_tiling((rows * (row_len / w)) as u64, (rows * (row_len % w)) as u64);
        self.record_vec(cfg, cost, (rows * row_len) as u64, gangs, t0);
    }

    fn run_vec<L: Lane, K: LaneKernel>(&self, rows: usize, row_len: usize, kernel: &K) -> usize {
        let n = rows * row_len;
        if self.workers > 1 && rows > 1 && n >= PAR_MIN_ITEMS {
            let blocks = self.gang_blocks(rows);
            let gangs = blocks.len();
            std::thread::scope(|s| {
                for (lo, hi) in blocks {
                    s.spawn(move || {
                        for row in lo..hi {
                            vec_row::<L, K>(kernel, row, row_len);
                        }
                    });
                }
            });
            gangs
        } else {
            for row in 0..rows {
                vec_row::<L, K>(kernel, row, row_len);
            }
            1
        }
    }

    /// Lane-vectorized max reduction over a `rows × row_len` space (the
    /// CFL bound). Each packet's lanes are extracted and folded in
    /// ascending lane order, so the fold visits items in exactly the
    /// serial order within each gang; per-gang maxima fold in gang order
    /// as in [`Context::launch_max`]. Bitwise identical to the scalar
    /// reduction at every width and worker count.
    pub fn launch_max_vec<K: LaneMaxKernel>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        rows: usize,
        row_len: usize,
        kernel: &K,
    ) -> f64 {
        let t0 = Instant::now();
        let w = self.vector_width;
        let (result, gangs) =
            with_lane_width!(w, L => self.run_max_vec::<L, K>(rows, row_len, kernel));
        self.note_lane_tiling((rows * (row_len / w)) as u64, (rows * (row_len % w)) as u64);
        self.record_vec(cfg, cost, (rows * row_len) as u64, gangs, t0);
        result
    }

    fn run_max_vec<L: Lane, K: LaneMaxKernel>(
        &self,
        rows: usize,
        row_len: usize,
        kernel: &K,
    ) -> (f64, usize) {
        let n = rows * row_len;
        if self.workers > 1 && rows > 1 && n >= PAR_MIN_ITEMS {
            let blocks = self.gang_blocks(rows);
            let partials: Vec<AtomicU64> = blocks
                .iter()
                .map(|_| AtomicU64::new(f64::NEG_INFINITY.to_bits()))
                .collect();
            std::thread::scope(|s| {
                for (b, &(lo, hi)) in blocks.iter().enumerate() {
                    let slot = &partials[b];
                    s.spawn(move || {
                        let mut m = f64::NEG_INFINITY;
                        for row in lo..hi {
                            m = max_vec_row::<L, K>(kernel, row, row_len, m);
                        }
                        slot.store(m.to_bits(), Ordering::Relaxed);
                    });
                }
            });
            let m = partials
                .iter()
                .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
                .fold(f64::NEG_INFINITY, f64::max);
            (m, blocks.len())
        } else {
            let mut m = f64::NEG_INFINITY;
            for row in 0..rows {
                m = max_vec_row::<L, K>(kernel, row, row_len, m);
            }
            (m, 1)
        }
    }

    /// Lane-dispatching form of [`Context::gang_scope_with`]: the body is
    /// written once against [`Lane`] (a [`LaneGangBody`]) and runs at the
    /// context's vector width, handling its own packet/tail tiling inside
    /// each gang range (the fused pencil engine's shape). Recording is the
    /// caller's job, as with `gang_scope_with`.
    pub fn gang_vec_scope<S, R, B>(
        &self,
        n: usize,
        work_items: u64,
        state: &mut [S],
        body: &B,
    ) -> (Vec<R>, usize)
    where
        S: Send,
        R: Send,
        B: LaneGangBody<S, R>,
    {
        with_lane_width!(self.vector_width, L => self.gang_scope_with(
            n,
            work_items,
            state,
            |g, range, st| body.run::<L>(g, range, st),
        ))
    }

    /// Split `0..n` into gang blocks and run `body(gang, lo..hi, state)`
    /// on one scoped thread per gang, with per-gang mutable `state` (the
    /// per-worker scratch blocks of the fused sweep) and per-gang return
    /// values collected **in gang order**. Runs serially — same mapping,
    /// one gang — when the context has one worker, `n < 2`, or
    /// `work_items < PAR_MIN_ITEMS` (callers pass the true collapsed item
    /// count, which may exceed `n` units by a large per-unit factor).
    ///
    /// Returns `(per-gang results, gang count)`. Because the gang→range
    /// mapping is the fixed [`Context::gang_blocks`] partition and results
    /// are folded by the caller in gang order, any reduction over the
    /// returned vector is bitwise-independent of scheduling.
    ///
    /// `state` must hold at least `workers` elements; gang `g` gets
    /// exclusive use of `state[g]`.
    pub fn gang_scope_with<S, R, F>(
        &self,
        n: usize,
        work_items: u64,
        state: &mut [S],
        body: F,
    ) -> (Vec<R>, usize)
    where
        S: Send,
        R: Send,
        F: Fn(usize, std::ops::Range<usize>, &mut S) -> R + Sync,
    {
        if self.workers > 1 && n > 1 && work_items >= PAR_MIN_ITEMS as u64 {
            let blocks = self.gang_blocks(n);
            let gangs = blocks.len();
            assert!(
                state.len() >= gangs,
                "gang_scope_with: {} state blocks for {} gangs",
                state.len(),
                gangs
            );
            let body = &body;
            let mut results: Vec<Option<R>> = Vec::with_capacity(gangs);
            results.resize_with(gangs, || None);
            std::thread::scope(|s| {
                for ((g, (lo, hi)), (st, slot)) in blocks
                    .into_iter()
                    .enumerate()
                    .zip(state.iter_mut().zip(results.iter_mut()))
                {
                    s.spawn(move || {
                        *slot = Some(body(g, lo..hi, st));
                    });
                }
            });
            (results.into_iter().map(|r| r.unwrap()).collect(), gangs)
        } else {
            assert!(!state.is_empty(), "gang_scope_with: empty state");
            (vec![body(0, 0..n, &mut state[0])], 1)
        }
    }

    /// Stateless form of [`Context::gang_scope_with`].
    pub fn gang_scope<R, F>(&self, n: usize, work_items: u64, body: F) -> (Vec<R>, usize)
    where
        R: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        let mut state = vec![(); self.workers.max(1)];
        self.gang_scope_with(n, work_items, &mut state, |g, range, _| body(g, range))
    }

    /// Launch a gang-decomposed kernel over `n` units, recording ONE
    /// ledger row (items = `n`) with the gang count annotated on the
    /// traced event. Per-gang results come back in gang order for
    /// deterministic folding by the caller.
    pub fn launch_gangs<R, F>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        n: usize,
        body: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        let t0 = Instant::now();
        let (results, gangs) = self.gang_scope(n, n as u64, body);
        self.record(cfg, cost, n as u64, gangs, t0);
        results
    }
}

/// One row of a vector launch: full packets, then the scalar tail as
/// 1-wide (`f64`) packets. Item order within the row is strictly
/// ascending, so serial execution order is preserved exactly.
#[inline]
fn vec_row<L: Lane, K: LaneKernel>(kernel: &K, row: usize, row_len: usize) {
    let mut col = 0;
    while col + L::WIDTH <= row_len {
        kernel.packet::<L>(row, col);
        col += L::WIDTH;
    }
    while col < row_len {
        kernel.packet::<f64>(row, col);
        col += 1;
    }
}

/// One row of a vector max-reduction: lanes of each packet fold into the
/// accumulator in ascending lane order (= serial item order).
#[inline]
fn max_vec_row<L: Lane, K: LaneMaxKernel>(
    kernel: &K,
    row: usize,
    row_len: usize,
    mut acc: f64,
) -> f64 {
    let mut col = 0;
    while col + L::WIDTH <= row_len {
        let v = kernel.packet::<L>(row, col);
        for i in 0..L::WIDTH {
            acc = acc.max(v.lane(i));
        }
        col += L::WIDTH;
    }
    while col < row_len {
        acc = acc.max(kernel.packet::<f64>(row, col).lane(0));
        col += 1;
    }
    acc
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelClass;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cost() -> KernelCost {
        KernelCost::new(KernelClass::Other, 1.0, 8.0, 8.0)
    }

    #[test]
    fn launch_visits_every_index_once() {
        let ctx = Context::serial();
        let mut seen = vec![0u32; 100];
        ctx.launch(&LaunchConfig::tuned("t"), cost(), 100, |i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn launch_records_ledger_entry() {
        let ctx = Context::serial();
        ctx.launch(&LaunchConfig::tuned("kern"), cost(), 42, |_| {});
        let s = ctx.ledger().kernel("kern").unwrap();
        assert_eq!(s.items, 42);
        assert_eq!(s.launches, 1);
    }

    #[test]
    fn launch_par_visits_every_index_once() {
        // Above the grain threshold so a multi-worker context really forks.
        let n = 4 * PAR_MIN_ITEMS;
        let ctx = Context::with_workers(4);
        let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        ctx.launch_par(&LaunchConfig::tuned("p"), cost(), n, |i| {
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(ctx.ledger().kernel("p").unwrap().items, n as u64);
    }

    #[test]
    fn launch_chunks_gives_disjoint_chunks() {
        let ctx = Context::new();
        let mut out = vec![0.0f64; 64];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 8, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 8 + j) as f64;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        assert_eq!(ctx.ledger().kernel("c").unwrap().items, 8);
    }

    #[test]
    fn launch_chunks_parallel_matches_serial() {
        let chunk = 16;
        let n = 8 * PAR_MIN_ITEMS;
        let fill = |i: usize, c: &mut [f64]| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = ((i * 31 + j * 7) % 1013) as f64 * 0.5;
            }
        };
        let mut serial = vec![0.0f64; n];
        Context::serial().launch_chunks(
            &LaunchConfig::tuned("c"),
            cost(),
            &mut serial,
            chunk,
            fill,
        );
        let mut par = vec![0.0f64; n];
        Context::with_workers(5).launch_chunks(
            &LaunchConfig::tuned("c"),
            cost(),
            &mut par,
            chunk,
            fill,
        );
        assert_eq!(serial, par);
    }

    #[test]
    #[should_panic]
    fn launch_chunks_rejects_non_multiple() {
        let ctx = Context::serial();
        let mut out = vec![0.0f64; 10];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 3, |_, _| {});
    }

    #[test]
    fn launch_max_reduces_correctly() {
        let ctx = Context::new();
        let m = ctx.launch_max(&LaunchConfig::tuned("m"), cost(), 1000, |i| {
            -((i as f64) - 500.5).abs()
        });
        assert_eq!(m, -0.5);
    }

    #[test]
    fn launch_max_parallel_is_bitwise_deterministic() {
        let n = 8 * PAR_MIN_ITEMS;
        let body = |i: usize| ((i as f64) * 0.7315).sin() * 1.0e-3 + (i % 97) as f64;
        let serial = Context::serial().launch_max(&LaunchConfig::tuned("m"), cost(), n, body);
        for workers in [2, 3, 8] {
            let par = Context::with_workers(workers).launch_max(
                &LaunchConfig::tuned("m"),
                cost(),
                n,
                body,
            );
            assert_eq!(serial.to_bits(), par.to_bits(), "workers = {workers}");
        }
    }

    #[test]
    fn traced_launches_reconcile_with_ledger_exactly() {
        let tracer = mfc_trace::Tracer::new();
        let mut ctx = Context::serial();
        ctx.set_tracer(tracer.handle(0));
        // Awkward item counts so the per-launch float products do not sum
        // exactly unless the trace carries the ledger's own terms.
        for items in [100usize, 37, 1013] {
            ctx.launch(&LaunchConfig::tuned("k"), cost(), items, |_| {});
        }
        ctx.launch_max(&LaunchConfig::tuned("m"), cost(), 513, |i| i as f64);
        ctx.flush_ledger_to_trace();
        let json = mfc_trace::chrome::export_to_string(&tracer.snapshot());
        let parsed = mfc_trace::chrome::parse_str(&json).unwrap();
        assert!(mfc_trace::reconcile_trace(&parsed).is_ok());
    }

    #[test]
    fn untraced_context_emits_nothing() {
        let ctx = Context::serial();
        assert!(ctx.tracer().is_none());
        assert!(ctx.span("step", Category::Phase).is_none());
        ctx.trace_instant("x", Category::Phase);
        ctx.trace_counter("dt", 1.0);
        ctx.flush_ledger_to_trace();
    }

    #[test]
    fn launch_max_empty_space_is_neg_infinity() {
        let ctx = Context::serial();
        let m = ctx.launch_max(&LaunchConfig::tuned("m0"), cost(), 0, |_| 1.0);
        assert_eq!(m, f64::NEG_INFINITY);
    }

    #[test]
    fn gang_blocks_cover_space_with_remainders() {
        // n % threads != 0: leading blocks absorb the remainder, coverage
        // is exact and contiguous, and the partition depends only on
        // (n, workers).
        for workers in 1..=9 {
            let ctx = Context::with_workers(workers);
            for n in [1usize, 2, 7, 8, 9, 100, 1023, 1024, 1025] {
                let blocks = ctx.gang_blocks(n);
                assert!(blocks.len() <= workers);
                assert_eq!(blocks.len(), workers.min(n.max(1)));
                let mut next = 0;
                for &(lo, hi) in &blocks {
                    assert_eq!(lo, next, "gap at n={n} workers={workers}");
                    assert!(hi > lo || n == 0);
                    next = hi;
                }
                assert_eq!(next, n, "coverage at n={n} workers={workers}");
                // Balanced: block lengths differ by at most one item.
                let lens: Vec<usize> = blocks.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "imbalance at n={n} workers={workers}");
            }
        }
    }

    /// Count distinct OS threads a launch body ran on.
    fn distinct_threads(f: impl FnOnce(&(dyn Fn() + Sync))) -> usize {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        f(&|| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let ids = ids.into_inner().unwrap();
        ids.len()
    }

    #[test]
    fn par_min_items_boundary_switches_paths() {
        let ctx = Context::with_workers(4);
        // One item below the threshold: serial path, calling thread only.
        let below = distinct_threads(|mark| {
            ctx.launch_par(&LaunchConfig::tuned("b"), cost(), PAR_MIN_ITEMS - 1, |_| {
                mark()
            });
        });
        assert_eq!(below, 1, "below-threshold launch must stay serial");
        // At the threshold: forked path, more than one worker observed.
        let at = distinct_threads(|mark| {
            ctx.launch_par(&LaunchConfig::tuned("a"), cost(), PAR_MIN_ITEMS, |_| mark());
        });
        assert!(at > 1, "threshold launch must fork (saw {at} threads)");
        // A single-worker context never forks, whatever the size.
        let serial = distinct_threads(|mark| {
            Context::serial().launch_par(
                &LaunchConfig::tuned("s"),
                cost(),
                4 * PAR_MIN_ITEMS,
                |_| mark(),
            );
        });
        assert_eq!(serial, 1, "serial context must not fork");
    }

    #[test]
    fn gang_scope_results_come_back_in_gang_order() {
        let ctx = Context::with_workers(4);
        let n = 4 * PAR_MIN_ITEMS + 7;
        let (results, gangs) = ctx.gang_scope(n, n as u64, |g, range| (g, range.start, range.end));
        assert_eq!(gangs, 4);
        assert_eq!(results.len(), 4);
        let mut next = 0;
        for (i, &(g, lo, hi)) in results.iter().enumerate() {
            assert_eq!(g, i);
            assert_eq!(lo, next);
            next = hi;
        }
        assert_eq!(next, n);
        // Small spaces collapse to one gang covering everything.
        let (results, gangs) = ctx.gang_scope(5, 5, |g, range| (g, range.start, range.end));
        assert_eq!(gangs, 1);
        assert_eq!(results, vec![(0, 0, 5)]);
    }

    #[test]
    fn gang_scope_with_gives_each_gang_its_own_state() {
        let ctx = Context::with_workers(3);
        let n = 3 * PAR_MIN_ITEMS;
        let mut scratch = vec![0u64; ctx.workers()];
        let (sums, gangs) = ctx.gang_scope_with(n, n as u64, &mut scratch, |_, range, st| {
            for i in range {
                *st += i as u64;
            }
            *st
        });
        assert_eq!(gangs, 3);
        let total: u64 = sums.iter().sum();
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        assert_eq!(scratch, sums);
    }

    #[test]
    fn launch_gangs_records_one_ledger_row() {
        let ctx = Context::with_workers(4);
        let n = 2 * PAR_MIN_ITEMS;
        let parts = ctx.launch_gangs(&LaunchConfig::tuned("g"), cost(), n, |_, range| range.len());
        assert_eq!(parts.iter().sum::<usize>(), n);
        let s = ctx.ledger().kernel("g").unwrap();
        assert_eq!(s.launches, 1, "one row per launch, not per gang");
        assert_eq!(s.items, n as u64);
    }

    #[test]
    fn traced_parallel_launches_reconcile_and_annotate_gangs() {
        let tracer = mfc_trace::Tracer::new();
        let mut ctx = Context::with_workers(4);
        ctx.set_tracer(tracer.handle(0));
        let n = 4 * PAR_MIN_ITEMS;
        ctx.launch_par(&LaunchConfig::tuned("pk"), cost(), n, |_| {});
        ctx.launch_gangs(&LaunchConfig::tuned("gk"), cost(), n, |_, _| ());
        ctx.flush_ledger_to_trace();
        let json = mfc_trace::chrome::export_to_string(&tracer.snapshot());
        let parsed = mfc_trace::chrome::parse_str(&json).unwrap();
        assert!(mfc_trace::reconcile_trace(&parsed).is_ok());
        // The kernel events carry the gang count and the threads counter
        // reports the context width.
        assert!(json.contains("\"gangs\":4"));
        assert!(json.contains("\"threads\""));
    }

    use crate::shared::ParSlice;
    use crate::vector::{Lane, LaneKernel, LaneMaxKernel};

    /// A stencil-shaped lane kernel: out[row][col] from in[row][col..+3].
    struct Stencil<'a> {
        src: &'a [f64],
        out: ParSlice<'a>,
        row_len: usize,
    }

    impl LaneKernel for Stencil<'_> {
        fn packet<L: Lane>(&self, row: usize, col: usize) {
            let base = row * (self.row_len + 2) + col;
            let a = L::load(&self.src[base..]);
            let b = L::load(&self.src[base + 1..]);
            let c = L::load(&self.src[base + 2..]);
            let v = (a + c) * L::splat(0.25) + b * L::splat(0.5) + a * b * c;
            self.out.set_lanes(row * self.row_len + col, v);
        }
    }

    #[test]
    fn launch_vec_is_bitwise_identical_across_widths_and_workers() {
        // Row length chosen to leave a scalar tail at every width > 1.
        let (rows, row_len) = (37, 101);
        let src: Vec<f64> = (0..rows * (row_len + 2))
            .map(|i| ((i as f64) * 0.7311).sin() * 3.0 + (i % 13) as f64)
            .collect();
        let run = |width: usize, workers: usize| {
            let ctx = Context::with_workers(workers).with_vector_width(width);
            let mut out = vec![0.0f64; rows * row_len];
            let k = Stencil {
                src: &src,
                out: ParSlice::new(&mut out),
                row_len,
            };
            ctx.launch_vec(&LaunchConfig::tuned("stencil"), cost(), rows, row_len, &k);
            (out, ctx.lane_stats())
        };
        let (reference, _) = run(1, 1);
        for width in [2, 4, 8] {
            for workers in [1, 4] {
                let (got, (packets, tail)) = run(width, workers);
                for (a, b) in reference.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "w={width} workers={workers}");
                }
                assert_eq!(packets as usize, rows * (row_len / width));
                assert_eq!(tail as usize, rows * (row_len % width));
            }
        }
    }

    struct MaxBody;
    impl LaneMaxKernel for MaxBody {
        fn packet<L: Lane>(&self, row: usize, col: usize) -> L {
            L::from_lanes(|i| {
                let item = (row * 131 + col + i) as f64;
                (item * 0.519).sin() * 100.0 + (item % 89.0)
            })
        }
    }

    #[test]
    fn launch_max_vec_matches_scalar_fold_bitwise() {
        let (rows, row_len) = (64, 131);
        let reference = Context::with_workers(1)
            .with_vector_width(1)
            .launch_max_vec(&LaunchConfig::tuned("mv"), cost(), rows, row_len, &MaxBody);
        for width in [2, 4, 8] {
            for workers in [1, 4] {
                let got = Context::with_workers(workers)
                    .with_vector_width(width)
                    .launch_max_vec(&LaunchConfig::tuned("mv"), cost(), rows, row_len, &MaxBody);
                assert_eq!(reference.to_bits(), got.to_bits(), "w={width}");
            }
        }
    }

    #[test]
    fn traced_vector_launch_annotates_lanes_and_reconciles() {
        let tracer = mfc_trace::Tracer::new();
        let mut ctx = Context::with_workers(4).with_vector_width(4);
        ctx.set_tracer(tracer.handle(0));
        let (rows, row_len) = (64, 33);
        let src = vec![1.0f64; rows * (row_len + 2)];
        let mut out = vec![0.0f64; rows * row_len];
        let k = Stencil {
            src: &src,
            out: ParSlice::new(&mut out),
            row_len,
        };
        ctx.launch_vec(&LaunchConfig::tuned("vk"), cost(), rows, row_len, &k);
        ctx.flush_ledger_to_trace();
        let json = mfc_trace::chrome::export_to_string(&tracer.snapshot());
        let parsed = mfc_trace::chrome::parse_str(&json).unwrap();
        assert!(mfc_trace::reconcile_trace(&parsed).is_ok());
        assert!(json.contains("\"lanes\":4"), "lanes annotation missing");
        assert!(json.contains("\"vector_width\""), "width counter missing");
        assert!(
            json.contains("\"lane_tail_fraction\""),
            "tail counter missing"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_vector_width_is_rejected() {
        let _ = Context::serial().with_vector_width(3);
    }

    #[test]
    fn gang_vec_scope_runs_every_unit_once_at_any_width() {
        struct Body;
        impl crate::vector::LaneGangBody<u64, u64> for Body {
            fn run<L: Lane>(&self, _g: usize, range: std::ops::Range<usize>, st: &mut u64) -> u64 {
                for u in range {
                    *st += u as u64 + L::WIDTH as u64 - L::WIDTH as u64;
                }
                *st
            }
        }
        for width in [1, 2, 4, 8] {
            let ctx = Context::with_workers(3).with_vector_width(width);
            let n = 3 * PAR_MIN_ITEMS;
            let mut scratch = vec![0u64; ctx.workers()];
            let (sums, gangs) = ctx.gang_vec_scope(n, n as u64, &mut scratch, &Body);
            assert_eq!(gangs, 3);
            assert_eq!(sums.iter().sum::<u64>(), (n as u64 - 1) * n as u64 / 2);
        }
    }
}
