//! Kernel execution — the `!$acc parallel loop` substitute.

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use crate::config::LaunchConfig;
use crate::cost::KernelCost;
use crate::ledger::Ledger;

/// An execution context: one "device" plus its profiling ledger.
///
/// With more than one worker thread the collapsed iteration space is split
/// across a rayon pool (gangs ≙ work-stealing chunks, vector lanes ≙ the
/// threads inside a chunk); with a single worker the loop runs serially —
/// the paper's "compiled without OpenACC" CPU path.
#[derive(Clone)]
pub struct Context {
    ledger: Arc<Ledger>,
    workers: usize,
}

impl Context {
    /// A context using every available worker thread.
    pub fn new() -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: rayon::current_num_threads(),
        }
    }

    /// A strictly serial context (reference results, bitwise determinism).
    pub fn serial() -> Self {
        Context {
            ledger: Arc::new(Ledger::new()),
            workers: 1,
        }
    }

    /// The profiling ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Share the ledger (e.g. across solver sub-components).
    pub fn ledger_arc(&self) -> Arc<Ledger> {
        Arc::clone(&self.ledger)
    }

    /// Number of worker threads the context schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Launch a kernel over a collapsed iteration space of `n` items.
    ///
    /// The body observes iteration indices in an unspecified order (as on a
    /// device); it must not rely on sequencing between iterations.
    /// Sequential contexts run indices in order, which is what makes the
    /// serial path reproducible.
    pub fn launch<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, mut body: F)
    where
        F: FnMut(usize),
    {
        let t0 = Instant::now();
        for i in 0..n {
            body(i);
        }
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
    }

    /// Launch a kernel whose output decomposes into disjoint `chunk_len`
    /// slices of `out` — the shape of every sweep kernel in the solver
    /// (one contiguous coalesced line per (j,k,field) tuple).
    ///
    /// The body receives `(chunk_index, chunk)` and may only write its own
    /// chunk, which is what makes the parallel execution race-free by
    /// construction. Iteration count recorded in the ledger is the number
    /// of chunks.
    pub fn launch_chunks<T, F>(
        &self,
        cfg: &LaunchConfig,
        cost: KernelCost,
        out: &mut [T],
        chunk_len: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert_eq!(
            out.len() % chunk_len,
            0,
            "output length {} is not a multiple of chunk length {}",
            out.len(),
            chunk_len
        );
        let n = out.len() / chunk_len;
        let t0 = Instant::now();
        if self.workers > 1 {
            out.par_chunks_mut(chunk_len)
                .enumerate()
                .for_each(|(i, c)| body(i, c));
        } else {
            for (i, c) in out.chunks_exact_mut(chunk_len).enumerate() {
                body(i, c);
            }
        }
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
    }

    /// Launch a reduction kernel returning the maximum of the body over the
    /// iteration space (used for the CFL time-step bound).
    pub fn launch_max<F>(&self, cfg: &LaunchConfig, cost: KernelCost, n: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let t0 = Instant::now();
        let result = if self.workers > 1 {
            (0..n)
                .into_par_iter()
                .map(&body)
                .reduce(|| f64::NEG_INFINITY, f64::max)
        } else {
            (0..n).map(&body).fold(f64::NEG_INFINITY, f64::max)
        };
        self.ledger
            .record_launch(cfg.label, cost, n as u64, t0.elapsed());
        result
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelClass;

    fn cost() -> KernelCost {
        KernelCost::new(KernelClass::Other, 1.0, 8.0, 8.0)
    }

    #[test]
    fn launch_visits_every_index_once() {
        let ctx = Context::serial();
        let mut seen = vec![0u32; 100];
        ctx.launch(&LaunchConfig::tuned("t"), cost(), 100, |i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn launch_records_ledger_entry() {
        let ctx = Context::serial();
        ctx.launch(&LaunchConfig::tuned("kern"), cost(), 42, |_| {});
        let s = ctx.ledger().kernel("kern").unwrap();
        assert_eq!(s.items, 42);
        assert_eq!(s.launches, 1);
    }

    #[test]
    fn launch_chunks_gives_disjoint_chunks() {
        let ctx = Context::new();
        let mut out = vec![0.0f64; 64];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 8, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 8 + j) as f64;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        assert_eq!(ctx.ledger().kernel("c").unwrap().items, 8);
    }

    #[test]
    #[should_panic]
    fn launch_chunks_rejects_non_multiple() {
        let ctx = Context::serial();
        let mut out = vec![0.0f64; 10];
        ctx.launch_chunks(&LaunchConfig::tuned("c"), cost(), &mut out, 3, |_, _| {});
    }

    #[test]
    fn launch_max_reduces_correctly() {
        let ctx = Context::new();
        let m = ctx.launch_max(&LaunchConfig::tuned("m"), cost(), 1000, |i| {
            -((i as f64) - 500.5).abs()
        });
        assert_eq!(m, -0.5);
    }

    #[test]
    fn launch_max_empty_space_is_neg_infinity() {
        let ctx = Context::serial();
        let m = ctx.launch_max(&LaunchConfig::tuned("m0"), cost(), 0, |_| 1.0);
        assert_eq!(m, f64::NEG_INFINITY);
    }
}
