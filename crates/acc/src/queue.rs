//! Asynchronous execution queues — `!$acc ... async(n)` / `!$acc wait`.
//!
//! GPU codes overlap independent kernels (e.g., halo-buffer packing for
//! different faces) by launching them on separate queues and
//! synchronizing once. The substitute keeps the *semantics*: work
//! enqueued on a queue is deferred, runs in enqueue order at `wait`, and
//! distinct queues are independent (no ordering between them until a
//! global wait). Execution is host-serial, so this models correctness of
//! the async structure rather than its overlap speedup — which is what
//! allows testing that kernels were legal to overlap at all.

use std::collections::HashMap;

use crate::exec::Context;

type Task<'a> = Box<dyn FnOnce(&Context) + 'a>;

/// A set of async queues bound to one context.
pub struct QueueSet<'a> {
    ctx: &'a Context,
    queues: HashMap<u32, Vec<Task<'a>>>,
    /// Total tasks executed by `wait`s (for tests/diagnostics).
    completed: usize,
}

impl<'a> QueueSet<'a> {
    pub fn new(ctx: &'a Context) -> Self {
        QueueSet {
            ctx,
            queues: HashMap::new(),
            completed: 0,
        }
    }

    /// Enqueue work on queue `id` (`async(id)`).
    pub fn enqueue(&mut self, id: u32, task: impl FnOnce(&Context) + 'a) {
        self.queues.entry(id).or_default().push(Box::new(task));
    }

    /// Number of tasks pending on queue `id`.
    pub fn pending(&self, id: u32) -> usize {
        self.queues.get(&id).map(|q| q.len()).unwrap_or(0)
    }

    /// Synchronize one queue (`wait(id)`): run its tasks in order.
    pub fn wait(&mut self, id: u32) {
        if let Some(tasks) = self.queues.remove(&id) {
            for t in tasks {
                t(self.ctx);
                self.completed += 1;
            }
        }
    }

    /// Synchronize every queue (`wait` with no argument). Queues drain in
    /// ascending id order for determinism.
    pub fn wait_all(&mut self) {
        let mut ids: Vec<u32> = self.queues.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.wait(id);
        }
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

impl Drop for QueueSet<'_> {
    fn drop(&mut self) {
        // Leaving work enqueued is a bug (a missing `wait`), the same way
        // destroying a CUDA stream with pending work is.
        let pending: usize = self.queues.values().map(|q| q.len()).sum();
        if pending > 0 && !std::thread::panicking() {
            panic!("{pending} tasks dropped without a wait()");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn tasks_run_in_enqueue_order_within_a_queue() {
        let ctx = Context::serial();
        let log = RefCell::new(Vec::new());
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(1, |_| log.borrow_mut().push("a"));
        qs.enqueue(1, |_| log.borrow_mut().push("b"));
        assert_eq!(qs.pending(1), 2);
        assert!(log.borrow().is_empty(), "tasks must defer until wait");
        qs.wait(1);
        assert_eq!(*log.borrow(), vec!["a", "b"]);
        assert_eq!(qs.pending(1), 0);
    }

    #[test]
    fn wait_on_one_queue_leaves_others_pending() {
        let ctx = Context::serial();
        let count = RefCell::new(0);
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(1, |_| *count.borrow_mut() += 1);
        qs.enqueue(2, |_| *count.borrow_mut() += 10);
        qs.wait(1);
        assert_eq!(*count.borrow(), 1);
        assert_eq!(qs.pending(2), 1);
        qs.wait_all();
        assert_eq!(*count.borrow(), 11);
    }

    #[test]
    fn wait_all_drains_in_queue_id_order() {
        let ctx = Context::serial();
        let log = RefCell::new(Vec::new());
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(7, |_| log.borrow_mut().push(7));
        qs.enqueue(2, |_| log.borrow_mut().push(2));
        qs.enqueue(5, |_| log.borrow_mut().push(5));
        qs.wait_all();
        assert_eq!(*log.borrow(), vec![2, 5, 7]);
        assert_eq!(qs.completed(), 3);
    }

    #[test]
    fn wait_all_after_partial_wait_is_deterministic() {
        // The overlapped halo exchange waits queues one axis at a time
        // and finishes with a wait_all; a partial wait must neither
        // re-run drained work nor disturb the ascending-id drain order
        // of what remains — including work enqueued *after* the partial
        // wait, onto both old and already-drained queue ids.
        let ctx = Context::serial();
        let log = RefCell::new(Vec::new());
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(1, |_| log.borrow_mut().push("1a"));
        qs.enqueue(2, |_| log.borrow_mut().push("2a"));
        qs.enqueue(3, |_| log.borrow_mut().push("3a"));
        qs.wait(2);
        assert_eq!(*log.borrow(), vec!["2a"]);
        assert_eq!(qs.pending(2), 0);
        // Re-arm the drained queue and extend a pending one.
        qs.enqueue(2, |_| log.borrow_mut().push("2b"));
        qs.enqueue(1, |_| log.borrow_mut().push("1b"));
        qs.wait_all();
        assert_eq!(*log.borrow(), vec!["2a", "1a", "1b", "2b", "3a"]);
        assert_eq!(qs.completed(), 5);
        // Idempotent: nothing left, nothing re-runs.
        qs.wait_all();
        assert_eq!(qs.completed(), 5);
    }

    #[test]
    #[should_panic(expected = "without a wait")]
    fn dropping_pending_work_panics() {
        let ctx = Context::serial();
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(0, |_| {});
        drop(qs);
    }

    #[test]
    fn queued_kernels_reach_the_ledger() {
        use crate::config::LaunchConfig;
        use crate::cost::{KernelClass, KernelCost};
        let ctx = Context::serial();
        let mut qs = QueueSet::new(&ctx);
        qs.enqueue(3, |ctx| {
            ctx.launch(
                &LaunchConfig::tuned("queued_kernel"),
                KernelCost::new(KernelClass::Halo, 1.0, 8.0, 8.0),
                64,
                |_| {},
            );
        });
        assert!(ctx.ledger().kernel("queued_kernel").is_none());
        qs.wait(3);
        assert_eq!(ctx.ledger().kernel("queued_kernel").unwrap().items, 64);
    }
}
