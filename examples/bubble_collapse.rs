//! Axisymmetric (spherical) bubble collapse — one of MFC's §III-F
//! validation problems.
//!
//! An air bubble in water at 1 atm internal pressure is crushed by a
//! 100 atm far field. The volume history is printed against the Rayleigh
//! collapse time scale `t_c = 0.915 R sqrt(rho/dp)`.

use mfc::core::axisym::Geometry;
use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

fn main() {
    let r0 = 1.0e-3;
    let p_inf = 100.0 * 101325.0;
    let n = 32;
    let case = CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 2, [2 * n, n, 1])
        .extent([-4.0 * r0, 0.0, 0.0], [4.0 * r0, 4.0 * r0, 1.0])
        .bc(BcSpec {
            lo: [
                BcKind::Transmissive,
                BcKind::Reflective,
                BcKind::Transmissive,
            ],
            hi: [
                BcKind::Transmissive,
                BcKind::Transmissive,
                BcKind::Transmissive,
            ],
        })
        .smear(1.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [0.0; 3], p_inf),
        )
        .patch(
            Region::Sphere {
                center: [0.0, 0.0, 0.0],
                radius: r0,
            },
            PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [0.0; 3], 101325.0),
        );
    let cfg = SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Axisymmetric,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::new());
    let eq = case.eq();

    let gas_volume = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        let dom = *solver.domain();
        let grid = solver.grid();
        let mut v = 0.0;
        for (i, j, k) in dom.interior() {
            let r = grid.y.centers()[j - dom.pad(1)];
            let dv = grid.x.widths()[i - dom.pad(0)] * grid.y.widths()[j - dom.pad(1)] * r;
            v += prim.get(i, j, k, eq.adv(0)) * dv;
        }
        v
    };

    let t_c = 0.915 * r0 * (1000.0f64 / (p_inf - 101325.0)).sqrt();
    let v0 = gas_volume(&solver);
    println!("Rayleigh collapse of a 1 mm air bubble at 100 atm (t_c = {t_c:.3e} s)");
    println!("   t/t_c    V/V0    (R/R0 est.)");
    let mut next_report = 0.0;
    while solver.time() < 0.6 * t_c {
        solver.step().unwrap();
        if solver.time() >= next_report {
            let v = gas_volume(&solver) / v0;
            println!(
                "  {:6.3} {:8.4} {:8.4}",
                solver.time() / t_c,
                v,
                v.max(0.0).powf(1.0 / 3.0)
            );
            next_report += 0.05 * t_c;
        }
    }
    let v_end = gas_volume(&solver) / v0;
    println!(
        "\nafter {:.2} t_c: V/V0 = {v_end:.4} over {} steps (grind {:.1} ns/cell/PDE/RHS)",
        solver.time() / t_c,
        solver.steps(),
        solver.grind().ns_per_cell_eq_rhs()
    );
    assert!(v_end < 0.9, "bubble failed to collapse");
    println!("collapse demo PASSED");
}
