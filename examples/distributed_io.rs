//! The full §III-A I/O pipeline, end to end:
//!
//! distributed solve (halo exchange over simulated ranks)
//!   → each rank writes its block with the wave-throttled
//!     file-per-process writer
//!   → the host post-processor reassembles the global field from the
//!     per-rank files
//!   → a legacy-VTK database (the SILO substitute) is produced for
//!     Paraview/VisIt.

use mfc::core::output::{postprocess_wave_files, write_vtk_rectilinear};
use mfc::core::par::{run_distributed, run_distributed_with_output, ExchangeMode};
use mfc::mpsim::Staging;
use mfc::{presets, SolverConfig};

fn main() {
    let dir = std::path::PathBuf::from("target/distributed_io");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let case = presets::two_phase_benchmark(2, [48, 48, 1]);
    let cfg = SolverConfig::default();
    let ranks = 4;
    let steps = 10;

    println!("running {ranks} simulated ranks for {steps} steps (overlapped exchange)...");
    // The overlapped exchange hides the halo messages behind the interior
    // sweeps; the cross-check below proves it is bitwise identical to the
    // plain sendrecv gather path.
    let dims = run_distributed_with_output(
        &case,
        cfg,
        ranks,
        steps,
        Staging::DeviceDirect,
        ExchangeMode::Overlapped,
        &dir,
        2, // waves of 2 writers (DEFAULT_WAVE_SIZE = 128 in production)
        0, // output step id
        None,
    )
    .unwrap();
    println!(
        "rank files written under {} (decomposition {dims:?})",
        dir.display()
    );

    // Host-side post-processing (the paper's SILO-creation role).
    let eq = case.eq();
    let gf = postprocess_wave_files(&dir, 0, case.cells, eq, dims).unwrap();
    println!(
        "reassembled global field: {:?} cells x {} equations",
        gf.n, gf.neq
    );

    // Cross-check against the in-memory gather path.
    let (reference, _) = run_distributed(&case, cfg, ranks, steps, Staging::DeviceDirect).unwrap();
    let diff = gf.max_abs_diff(&reference);
    println!("max |file-based - gather-based| = {diff:.1e}");
    assert_eq!(
        diff, 0.0,
        "post-processing must reproduce the gather exactly"
    );

    let vtk = dir.join("two_phase.vtk");
    write_vtk_rectilinear(
        &vtk,
        &case.grid(),
        &gf,
        &[
            ("alpha_rho_air", eq.cont(0)),
            ("alpha_rho_water", eq.cont(1)),
            ("energy", eq.energy()),
            ("alpha_air", eq.adv(0)),
        ],
    )
    .unwrap();
    println!("wrote {} (open with Paraview/VisIt)", vtk.display());
    println!("distributed I/O pipeline PASSED");
}
