//! Two-phase Kelvin–Helmholtz instability: a shear layer between two
//! fluids rolls up into vortices — a classic stress test of the
//! diffuse-interface machinery (interface transport under strong shear).

use mfc::core::bc::BcSpec;
use mfc::core::fluid::Fluid;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

fn main() {
    let n = 64;
    // Light gas streaming right over a denser gas streaming left.
    let light = Fluid::air();
    let heavy = Fluid::new(1.4, 0.0);
    let (u_top, u_bot) = (150.0, -150.0);
    let case = CaseBuilder::new(vec![light, heavy], 2, [n, n, 1])
        .bc(BcSpec::periodic())
        .smear(2.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1.0 - 1e-6, [1.0, 4.0], [u_top, 0.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Box {
                lo: [-1.0, -1.0, -1.0],
                hi: [2.0, 0.5, 2.0],
            },
            PatchState::two_fluid(1e-6, [1.0, 4.0], [u_bot, 0.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::new());
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    // Seed the instability with a sinusoidal transverse velocity at the
    // interface (mode 2).
    {
        let rho_at = |q: &mfc::core::state::StateField, i: usize, j: usize| {
            q.get(i, j, 0, eq.cont(0)) + q.get(i, j, 0, eq.cont(1))
        };
        let q = solver.state_mut();
        for j in 0..n + 2 * ng {
            let y = (j as f64 - ng as f64 + 0.5) / n as f64;
            for i in 0..n + 2 * ng {
                let x = (i as f64 - ng as f64 + 0.5) / n as f64;
                let envelope = (-((y - 0.5) / 0.05).powi(2)).exp();
                let v = 8.0 * (2.0 * 2.0 * std::f64::consts::PI * x).sin() * envelope;
                let rho = rho_at(q, i, j);
                q.set(i, j, 0, eq.mom(1), rho * v);
            }
        }
    }

    let interface_span = |solver: &Solver| -> f64 {
        // Vertical extent of the mixed region (0.1 < alpha < 0.9).
        let prim = solver.primitives();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for j in 0..n {
            for i in 0..n {
                let a = prim.get(i + ng, j + ng, 0, eq.adv(0));
                if (0.1..0.9).contains(&a) {
                    let y = (j as f64 + 0.5) / n as f64;
                    lo = lo.min(y);
                    hi = hi.max(y);
                }
            }
        }
        (hi - lo).max(0.0)
    };

    println!("Kelvin-Helmholtz: shear {u_top}/{u_bot} m/s, density ratio 4, {n}x{n}");
    let span0 = interface_span(&solver);
    println!("initial mixed-layer thickness: {span0:.4}");
    for s in 0..1200 {
        solver.step().unwrap();
        if s % 200 == 0 {
            println!(
                "step {s:4}: t = {:.3e} s, mixed-layer thickness = {:.4}",
                solver.time(),
                interface_span(&solver)
            );
        }
    }
    let span1 = interface_span(&solver);
    println!("final mixed-layer thickness: {span1:.4}");
    println!(
        "grind: {:.1} ns/cell/PDE/RHS",
        solver.grind().ns_per_cell_eq_rhs()
    );
    assert!(span1 > 1.8 * span0, "no roll-up: {span0:.4} -> {span1:.4}");
    // Conservation still holds through the roll-up.
    let totals = solver.conservation();
    assert!(totals.iter().all(|v| v.is_finite()));
    println!("KH demo PASSED (interface rolled up, conservation intact)");
}
