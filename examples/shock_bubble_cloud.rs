//! Shock–bubble-cloud interaction (§VI-C, down-scaled).
//!
//! A strong pressure wave in water collapses a small cloud of air
//! bubbles. The paper resolved 75 bubbles with 2 billion cells on 1024
//! MI250X GCDs; this 2-D analog tracks the collapse of a 5-bubble cloud.

use mfc::{presets, Context, Solver, SolverConfig};

fn main() {
    let n = 128;
    let bubbles: Vec<([f64; 3], f64)> = vec![
        ([-1.0e-3, 0.0, 0.0], 4.0e-4),
        ([0.5e-3, 0.9e-3, 0.0], 3.0e-4),
        ([0.6e-3, -1.1e-3, 0.0], 3.5e-4),
        ([1.8e-3, 0.2e-3, 0.0], 2.5e-4),
        ([-0.2e-3, -2.0e-3, 0.0], 3.0e-4),
    ];
    let case = presets::shock_bubble_cloud_2d(n, &bubbles);
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::new());
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    let gas_volume = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        let mut v = 0.0;
        for j in 0..n {
            for i in 0..n {
                v += prim.get(i + ng, j + ng, 0, eq.adv(0));
            }
        }
        v / (n * n) as f64
    };

    println!(
        "Shock bubble cloud: {} bubbles in water, {n}x{n} cells",
        bubbles.len()
    );
    let v0 = gas_volume(&solver);
    println!("initial gas volume fraction: {v0:.5}");
    for s in 0..180 {
        solver.step().unwrap();
        if s % 45 == 0 {
            println!(
                "step {s:4}: t = {:.3e} s, gas volume fraction = {:.5}",
                solver.time(),
                gas_volume(&solver)
            );
        }
    }
    let v1 = gas_volume(&solver);
    println!("final gas volume fraction: {v1:.5}");
    println!(
        "compression ratio so far: {:.3} (bubbles {} under the incoming wave)",
        v0 / v1,
        if v1 < v0 {
            "are collapsing"
        } else {
            "have not yet been reached"
        }
    );
    println!(
        "grind time: {:.1} ns/cell/PDE/RHS",
        solver.grind().ns_per_cell_eq_rhs()
    );
    assert!(v1 <= v0 * 1.01, "gas volume should not grow before rebound");
}
