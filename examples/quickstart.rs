//! Quickstart: a Sod shock tube, validated against the exact solution.
//!
//! Run with `cargo run --release --example quickstart`.

use mfc::core::fluid::Fluid;
use mfc::core::riemann::{ExactRiemann, PrimSide};
use mfc::{presets, Context, Solver, SolverConfig};

fn main() {
    let n = 400;
    let case = presets::sod(n);
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::new());

    println!("Sod shock tube, {n} cells, WENO5 + HLLC + RK3");
    solver.run_until(0.15, 100_000).unwrap();
    println!(
        "reached t = {:.4} in {} steps (grind {:.1} ns/cell/PDE/RHS)",
        solver.time(),
        solver.steps(),
        solver.grind().ns_per_cell_eq_rhs()
    );

    // Exact reference.
    let air = Fluid::air();
    let exact = ExactRiemann::solve(
        PrimSide {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
            fluid: air,
        },
        PrimSide {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
            fluid: air,
        },
    );

    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    let t = solver.time();
    let mut l1 = 0.0;
    println!("\n  x       rho(sim)  rho(exact)   u(sim)     p(sim)");
    for i in 0..n {
        let x = (i as f64 + 0.5) / n as f64;
        let (rho_ex, _, _) = exact.sample((x - 0.5) / t);
        let rho = prim.get(i + ng, 0, 0, eq.cont(0));
        l1 += (rho - rho_ex).abs() / n as f64;
        if i % (n / 20) == 0 {
            println!(
                "{x:7.3} {rho:10.4} {rho_ex:10.4} {:10.4} {:10.4}",
                prim.get(i + ng, 0, 0, eq.mom(0)),
                prim.get(i + ng, 0, 0, eq.energy()),
            );
        }
    }
    println!("\ndensity L1 error vs exact solution: {l1:.5}");
    assert!(l1 < 0.01, "validation failed");
    println!("validation PASSED (L1 < 0.01)");
}
