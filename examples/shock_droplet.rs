//! Shock–droplet interaction (§VI-A, down-scaled to 2-D laptop size).
//!
//! A Mach-1.46 air shock impinges a water droplet. The paper ran this
//! with 2 billion cells on 960 V100s; here a 128^2 analog exercises the
//! same code path. Writes the final volume-fraction field to
//! `target/shock_droplet_alpha.csv` for plotting.

use std::io::Write;

use mfc::{presets, Context, Solver, SolverConfig};

fn main() {
    let n = 128;
    let case = presets::shock_droplet_2d(n);
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::new());
    let eq = case.eq();

    println!("Shock droplet: Mach 1.46 air shock onto a 1 mm water droplet, {n}x{n} cells");
    let c0 = solver.conservation();
    let steps = 150;
    for s in 0..steps {
        let dt = solver.step().unwrap().dt;
        if s % 30 == 0 {
            println!("step {s:4}: t = {:.3e} s, dt = {dt:.3e} s", solver.time());
        }
    }
    let c1 = solver.conservation();
    println!(
        "mass drift  (air, water): {:.2e}, {:.2e} (relative)",
        (c1[0] - c0[0]).abs() / c0[0].abs(),
        (c1[1] - c0[1]).abs() / c0[1].abs()
    );
    println!(
        "grind time: {:.1} ns/cell/PDE/RHS",
        solver.grind().ns_per_cell_eq_rhs()
    );

    // Droplet deformation diagnostics: water volume and interface extent.
    let prim = solver.primitives();
    let ng = solver.domain().pad(0);
    let mut water_cells = 0usize;
    let (mut max_p, mut min_p) = (f64::MIN, f64::MAX);
    for j in 0..n {
        for i in 0..n {
            let a_air = prim.get(i + ng, j + ng, 0, eq.adv(0));
            if a_air < 0.5 {
                water_cells += 1;
            }
            let p = prim.get(i + ng, j + ng, 0, eq.energy());
            max_p = max_p.max(p);
            min_p = min_p.min(p);
        }
    }
    println!("water cells: {water_cells}, pressure range: {min_p:.3e} .. {max_p:.3e} Pa");
    assert!(water_cells > 0, "the droplet vanished");
    assert!(min_p > 0.0, "negative pressure — unstable run");

    let path = "target/shock_droplet_alpha.csv";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    for j in 0..n {
        let row: Vec<String> = (0..n)
            .map(|i| format!("{:.4}", prim.get(i + ng, j + ng, 0, eq.adv(0))))
            .collect();
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    println!("alpha field written to {path}");
}
