//! Scaling report: functional multi-rank runs + the Summit/Frontier
//! scaling model (Figs. 2–4).
//!
//! Part 1 runs the *real* distributed solver (halo exchange over simulated
//! ranks) and verifies it against the serial run. Part 2 prints the
//! modelled weak/strong scaling curves for Summit and Frontier.

use mfc::core::par::{run_distributed, run_single};
use mfc::mpsim::Staging;
use mfc::perfmodel::figures;
use mfc::{presets, SolverConfig};

fn main() {
    println!("== Part 1: functional distributed runs (simulated ranks) ==");
    let case = presets::two_phase_benchmark(2, [32, 32, 1]);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 5);
    for ranks in [2usize, 4, 8] {
        let (dist, stats) = run_distributed(&case, cfg, ranks, 5, Staging::DeviceDirect).unwrap();
        let diff = dist.max_abs_diff(&serial);
        println!(
            "{ranks} ranks: max |distributed - serial| = {diff:.1e}  \
             (rank 0 sent {} msgs, {} bytes)",
            stats.messages, stats.bytes
        );
        assert_eq!(diff, 0.0, "distributed must equal serial bitwise");
    }
    let (_, staged) = run_distributed(&case, cfg, 4, 5, Staging::HostStaged).unwrap();
    println!(
        "host-staged run: same physics, {} msgs staged through the host",
        staged.messages
    );

    println!("\n== Part 2: modelled scaling on Summit and Frontier ==");
    print!(
        "{}",
        figures::render_scaling("Fig 2 — weak scaling", &figures::fig2_weak_scaling())
    );
    println!();
    print!(
        "{}",
        figures::render_scaling("Fig 3 — strong scaling", &figures::fig3_strong_scaling())
    );
    println!();
    print!(
        "{}",
        figures::render_scaling(
            "Fig 4 — strong scaling, GPU-aware vs host-staged MPI",
            &figures::fig4_gpu_aware(),
        )
    );
}
