//! Roofline + grind-time report (Figs. 1 and 5–7).
//!
//! Profiles the real solver to extract per-kernel FLOP/byte intensities,
//! then prints the modelled rooflines, GPU-vs-CPU speedups, and
//! kernel-time breakdowns.

use mfc::acc::KernelClass;
use mfc::perfmodel::{figures, WorkloadProfile};

fn main() {
    println!("profiling the instrumented solver (24^3 two-phase, 2 steps)...");
    let profile = WorkloadProfile::measure(24, 2);
    println!(
        "measured: {} cells, {} PDEs, {} RHS evaluations",
        profile.cells, profile.neq, profile.rhs_evals
    );
    for class in [
        KernelClass::Weno,
        KernelClass::Riemann,
        KernelClass::Pack,
        KernelClass::Update,
    ] {
        let c = profile.class(class);
        println!(
            "  {:<8} {:>9.1} FLOP/cell/RHS {:>9.1} B/cell/RHS  AI {:.3}",
            class.name(),
            c.flops_per_cell,
            c.bytes_per_cell,
            c.ai()
        );
    }
    println!();
    print!(
        "{}",
        figures::render_fig1(&figures::fig1_roofline(&profile))
    );
    println!();
    print!("{}", figures::render_fig5(&figures::fig5_speedup()));
    println!();
    print!(
        "{}",
        figures::render_fig6_fig7(&figures::fig6_fig7_breakdown())
    );
}
