//! Swirling flow in a cylindrical annulus, with the azimuthal low-pass
//! filter of §III-A applied in the loop — the full 3-D cylindrical code
//! path: r-scaled azimuthal metric, centrifugal sources, and the
//! FFT filter that relaxes the near-axis CFL restriction.

use mfc::core::axisym::Geometry;
use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::filter::apply_azimuthal_filter;
use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::fft::LowpassPlan;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

fn main() {
    let n = [8usize, 16, 32]; // z, r, theta
    let (r0, r1) = (0.1, 1.1);
    let omega = 40.0;
    let rho = 1.2;
    let p_ref = 1.0e5;
    let case = CaseBuilder::new(vec![Fluid::air()], 3, n)
        .extent([0.0, r0, 0.0], [0.5, r1, 2.0 * std::f64::consts::PI])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
        })
        .patch(Region::All, PatchState::single(rho, [0.0; 3], p_ref));
    let cfg = SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Cylindrical3D,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::new());
    let eq = case.eq();
    let dom = *solver.domain();
    let grid = solver.grid().clone();

    // Solid-body swirl + azimuthal pressure equilibrium, plus high-mode
    // azimuthal noise that the filter is there to remove.
    {
        let q = solver.state_mut();
        for j in 0..dom.ext(1) {
            let jr = (j as isize - dom.pad(1) as isize).clamp(0, grid.y.n() as isize - 1);
            let r = grid.y.centers()[jr as usize];
            let ut = omega * r;
            let p = p_ref + 0.5 * rho * omega * omega * (r * r - r0 * r0);
            for k in 0..dom.ext(2) {
                let theta = 2.0 * std::f64::consts::PI * ((k as f64 - 3.0 + 0.5) / n[2] as f64);
                let noise = 1.0 + 0.002 * (13.0 * theta).sin();
                for i in 0..dom.ext(0) {
                    q.set(i, j, k, eq.cont(0), rho * noise);
                    q.set(i, j, k, eq.mom(2), rho * noise * ut);
                    q.set(i, j, k, eq.energy(), p / 0.4 + 0.5 * rho * noise * ut * ut);
                }
            }
        }
    }

    let plan = LowpassPlan::new(n[1], n[2]);
    let ctx = Context::serial();

    // Azimuthal high-mode content of the density on the inner ring.
    let high_mode_amp = |solver: &Solver| -> f64 {
        let q = solver.state();
        let line: Vec<f64> = (0..n[2])
            .map(|k| q.get(4 + dom.pad(0), dom.pad(1), k + dom.pad(2), eq.cont(0)))
            .collect();
        let spec = mfc::fft::rfft(&line);
        spec[8..].iter().map(|c| c.abs()).fold(0.0, f64::max) / n[2] as f64
    };

    println!("Cylindrical swirl: annulus r in [{r0}, {r1}], Omega = {omega} rad/s, {n:?} cells");
    println!(
        "initial inner-ring high-mode amplitude: {:.3e}",
        high_mode_amp(&solver)
    );
    for s in 0..60 {
        solver.step().unwrap();
        // Filter every 10 steps (MFC applies it each step near the axis;
        // the cadence here keeps the demo readable).
        if s % 10 == 9 {
            apply_azimuthal_filter(&ctx, &plan, solver.state_mut());
        }
    }
    let amp = high_mode_amp(&solver);
    println!("final inner-ring high-mode amplitude:   {amp:.3e}");
    println!(
        "grind: {:.1} ns/cell/PDE/RHS",
        solver.grind().ns_per_cell_eq_rhs()
    );
    assert!(
        amp < 5.0e-4,
        "filter failed to control azimuthal noise: {amp:.3e}"
    );

    // Swirl survives: u_theta at the outer ring stays near Omega*r.
    let prim = solver.primitives();
    let j_out = n[1] - 2 + dom.pad(1);
    let r_out = grid.y.centers()[n[1] - 2];
    let ut = prim.get(4 + dom.pad(0), j_out, 3 + dom.pad(2), eq.mom(2));
    println!(
        "outer-ring u_theta = {ut:.1} m/s (solid body: {:.1})",
        omega * r_out
    );
    assert!((ut - omega * r_out).abs() < 0.2 * omega * r_out);
    println!("cylindrical swirl demo PASSED");
}
