//! Flow over a NACA 2412 airfoil at 15° angle of attack via the
//! ghost-cell immersed boundary method (§VI-B, down-scaled).
//!
//! The paper resolved 500 cells per chord with 2.25 billion cells on 128
//! A100s; here ~40 cells per chord demonstrate the same IBM machinery.

use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::ibm::{Body, GhostCellIbm, NacaAirfoil};
use mfc::{presets, Context, Solver, SolverConfig};

fn main() {
    let n = 96;
    // Mach ~0.3 free stream.
    let u_inf = 100.0;
    let case = presets::uniform_flow(2, [n, n, 1], [u_inf, 0.0, 0.0])
        .extent([-1.0, -1.25, 0.0], [1.5, 1.25, 1.0])
        .bc(BcSpec::all(BcKind::Transmissive));
    let foil = NacaAirfoil::naca2412([-0.5, 0.0], 1.0);
    let sdf_probe = foil.sdf([0.0, 0.0, 0.0]);
    let ibm = GhostCellIbm::new(Box::new(foil));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::new()).with_body(ibm);
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    println!("NACA 2412 at 15 deg AoA, {n}x{n} cells, chord = 1 (sdf at origin: {sdf_probe:.3})");
    for s in 0..120 {
        solver.step().unwrap();
        if s % 30 == 0 {
            println!("step {s:4}: t = {:.3e} s", solver.time());
        }
    }

    // Diagnostics: the flow must decelerate near the leading edge
    // (stagnation) and stay near free-stream far away.
    let prim = solver.primitives();
    let cell = |x: f64, y: f64| -> (usize, usize) {
        let i = ((x + 1.0) / 2.5 * n as f64) as usize;
        let j = ((y + 1.25) / 2.5 * n as f64) as usize;
        (i.min(n - 1) + ng, j.min(n - 1) + ng)
    };
    let (i0, j0) = cell(-0.55, -0.02); // just upstream of the leading edge
    let (i1, j1) = cell(-0.95, 1.0); // far field
    let u_stag = prim.get(i0, j0, 0, eq.mom(0));
    let u_far = prim.get(i1, j1, 0, eq.mom(0));
    println!(
        "u near leading edge: {u_stag:.1} m/s; far field: {u_far:.1} m/s (free stream {u_inf})"
    );
    assert!(
        u_stag < 0.9 * u_inf,
        "no deceleration at the body: {u_stag}"
    );
    assert!(
        (u_far - u_inf).abs() < 0.25 * u_inf,
        "far field disturbed: {u_far}"
    );

    // Vorticity magnitude behind the trailing edge (the wake the paper
    // visualizes) should exceed the free-stream's.
    let dz = 2.5 / n as f64;
    let vort = |i: usize, j: usize| -> f64 {
        let dv_dx =
            (prim.get(i + 1, j, 0, eq.mom(1)) - prim.get(i - 1, j, 0, eq.mom(1))) / (2.0 * dz);
        let du_dy =
            (prim.get(i, j + 1, 0, eq.mom(0)) - prim.get(i, j - 1, 0, eq.mom(0))) / (2.0 * dz);
        (dv_dx - du_dy).abs()
    };
    let (iw, jw) = cell(0.75, -0.15);
    let (iq, jq) = cell(-0.9, 1.1);
    println!(
        "wake vorticity: {:.1} 1/s, quiescent corner: {:.1} 1/s",
        vort(iw, jw),
        vort(iq, jq)
    );
    assert!(vort(iw, jw) > vort(iq, jq), "no wake vorticity generated");
    println!("IBM airfoil demo PASSED");
}
