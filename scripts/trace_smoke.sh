#!/usr/bin/env bash
# Traced 2-rank smoke run through the CLI: `mfc-run --trace` must emit
# schema-valid chrome-trace JSON whose per-kernel aggregated totals
# reconcile *exactly* with the analytic kernel ledger, and
# `mfc-trace-report` must print the measured per-rank comm/compute split
# (the reproduction's Fig. 4 counterpart). Also exercises the
# configurable writer-wave width (`--io-wave`) so the wave-throttled I/O
# spans land on the timeline.
#
# The tracing-disabled overhead gate rides in
# `scripts/bench_snapshot.sh --check` (the perf CI job).
#
# Run from the repo root: bash scripts/trace_smoke.sh
# Pass `--workers N` to run the traced solver on N gang-parallel worker
# threads: the timeline gains gang annotations and a `threads` counter,
# and the ledger reconciliation must stay exact.
set -u

WORKERS=1
if [ "${1:-}" = "--workers" ]; then
    WORKERS=${2:?--workers needs a thread count}
fi
WFLAGS=""
[ "$WORKERS" -gt 1 ] && WFLAGS="--workers $WORKERS"

cargo build -q -p mfc-cli -p mfc-trace || exit 1
BIN=target/debug/mfc-run
REPORT=target/debug/mfc-trace-report
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

require_output() { # require_output <description> <grep-pattern>
    if grep -q "$2" "$TMP/out.log"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - output lacks '$2'"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    fi
}

# A 2-rank Sod run with file-per-process wave output (wave width 1, so
# the throttle barriers actually engage with 2 ranks).
cat >"$TMP/sod2.json" <<EOF
{
  "name": "trace_smoke_sod2",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [64, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0, 0, 0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0, 0, 0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5 },
  "run": { "steps": 12, "ranks": 2 },
  "io": { "wave_files": true },
  "output": { "dir": "$TMP/out", "vtk": false }
}
EOF

expect 0 "traced 2-rank wave-file run exits 0" \
    "$BIN" "$TMP/sod2.json" --trace "$TMP/trace.json" --io-wave 1 $WFLAGS
require_output "run reports the trace file" "wrote trace"

if [ -s "$TMP/trace.json" ]; then
    echo "ok: trace file is non-empty"
else
    echo "FAIL: trace file missing or empty"
    fail=1
fi

# Schema validation + span nesting + exact ledger reconciliation, and the
# measured per-rank comm/compute split, all through the report bin.
expect 0 "mfc-trace-report --validate --reconcile passes" \
    "$REPORT" "$TMP/trace.json" --validate --reconcile
require_output "schema validates" "schema: OK"
require_output "span streams are well-nested" "span nesting: OK"
require_output "report covers both ranks" "2 rank(s)"
require_output "report prints the comm/compute split" "comm/compute split"
if [ "$WORKERS" -gt 1 ]; then
    require_output "report shows the per-rank worker count" \
        "worker threads — rank 0: $WORKERS"
fi

# A bad wave width must be rejected as a configuration error (exit 2).
expect 2 "--io-wave 0 is a configuration error" \
    "$BIN" "$TMP/sod2.json" --io-wave 0

# A truncated trace file must fail validation, not pass silently.
head -c 64 "$TMP/trace.json" >"$TMP/truncated.json"
expect 3 "truncated trace fails to parse" \
    "$REPORT" "$TMP/truncated.json" --validate

if [ "$fail" -ne 0 ]; then
    echo "trace smoke: FAILED (workers=$WORKERS)"
    exit 1
fi
echo "trace smoke: all checks passed (workers=$WORKERS)"
