#!/usr/bin/env bash
# Perf-trajectory snapshot: staged vs fused grind on the fixed 24^3
# two-phase case, plus the modeled-vs-measured sweep traffic ratio.
#
# Usage:
#   scripts/bench_snapshot.sh            # measure and (re)write BENCH_grind.json
#   scripts/bench_snapshot.sh --check    # compare against the committed
#                                        # snapshot; non-zero exit on
#                                        # regression (CI mode)
#
# Criterion detail for the same axes: cargo bench -p mfc-bench
# --bench ablation_fusion / --bench grind.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p mfc-bench --bin bench_snapshot -- "$@"
