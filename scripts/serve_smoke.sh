#!/usr/bin/env bash
# Smoke-test the mfc-serve ensemble scheduler end-to-end through the CLI:
#
#   - a 4-job mixed-priority manifest with one operator cancellation and
#     one injected fault runs to completion (exit 0), with per-job
#     outcomes in the JSONL ledger: 2 done, 1 cancelled at its exact
#     step boundary, 1 failed through the numerical-health watchdog;
#   - completed (and deterministically-cancelled) jobs' checkpoints are
#     byte-identical across worker budgets 1, 2, and 4 — elastic shares
#     and queueing are numerically invisible;
#   - the ensemble trace renders the scheduler view in mfc-trace-report;
#   - admission control is typed: bad manifests and invalid jobs exit 2
#     before anything runs, and `mfc-run --dry-run` (the same validation
#     the scheduler reuses) honors the 0/2 exit contract.
#
# Run from the repo root: bash scripts/serve_smoke.sh
set -u

cargo build -q -p mfc-sched -p mfc-cli -p mfc-trace || exit 1
SERVE=target/debug/mfc-serve
RUN=target/debug/mfc-run
REPORT=target/debug/mfc-trace-report
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

require_output() { # require_output <description> <grep-pattern>
    if grep -q "$2" "$TMP/out.log"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - output lacks '$2'"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    fi
}

require_ledger() { # require_ledger <description> <ledger> <grep-pattern>
    if grep -q "$3" "$2"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - ledger lacks '$3'"
        sed 's/^/  | /' "$2"
        fail=1
    fi
}

cat >"$TMP/case.json" <<EOF
{
  "name": "smoke",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [64, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0, 0, 0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0, 0, 0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5 },
  "run": { "steps": 30 },
  "output": { "dir": "$TMP/out_case", "vtk": false }
}
EOF

manifest() { # manifest <out-dir>
    cat <<EOF
{
  "budget": 2,
  "out_dir": "$1",
  "jobs": [
    { "case": "$TMP/case.json", "name": "long",     "priority": 0, "max_steps": 30 },
    { "case": "$TMP/case.json", "name": "urgent",   "priority": 5, "max_steps": 10 },
    { "case": "$TMP/case.json", "name": "cancelme", "priority": 1, "max_steps": 30, "cancel_at_step": 4 },
    { "case": "$TMP/case.json", "name": "faulty",   "priority": 1, "max_steps": 30, "fault_at_step": 3 }
  ]
}
EOF
}

# --- the mixed ensemble: outcomes land in the ledger ----------------------
manifest "$TMP/serve" >"$TMP/jobs.json"
expect 0 "mixed 4-job ensemble exits 0" \
    "$SERVE" --jobs "$TMP/jobs.json" --ledger "$TMP/ledger.jsonl" \
    --trace "$TMP/trace.json"
require_output "summary counts the completions" "2/4 done"

L="$TMP/ledger.jsonl"
if [ "$(wc -l <"$L")" -eq 4 ]; then
    echo "ok: ledger has one JSONL row per job"
else
    echo "FAIL: ledger row count != 4"
    fail=1
fi
require_ledger "long completes" "$L" '"job":"long".*"state":"done"'
require_ledger "urgent completes" "$L" '"job":"urgent".*"state":"done"'
require_ledger "cancelme stops cancelled at step 4" "$L" \
    '"job":"cancelme".*"state":"cancelled","steps":4'
require_ledger "faulty fails through the health watchdog" "$L" \
    '"job":"faulty".*"state":"failed".*not_finite'

ckpt="$TMP/serve/00_long/final.ckpt"
if [ -f "$ckpt" ] && [ "$(head -c 8 "$ckpt")" = "MFCKPT01" ]; then
    echo "ok: job checkpoint carries the MFCKPT01 magic"
else
    echo "FAIL: no MFCKPT01 checkpoint at $ckpt"
    fail=1
fi

# --- the trace renders the scheduler view ---------------------------------
expect 0 "trace report renders" "$REPORT" "$TMP/trace.json"
require_output "report shows the scheduler view" "scheduler view"
require_output "report shows queue depth" "queue depth max"

# --- bitwise invariance across budgets 1, 2, 4 ----------------------------
manifest "$TMP/serve_b1" >"$TMP/jobs_b1.json"
manifest "$TMP/serve_b4" >"$TMP/jobs_b4.json"
expect 0 "same manifest at --budget 1" \
    "$SERVE" --jobs "$TMP/jobs_b1.json" --budget 1 --ledger "$TMP/l1.jsonl"
expect 0 "same manifest at --budget 4" \
    "$SERVE" --jobs "$TMP/jobs_b4.json" --budget 4 --ledger "$TMP/l4.jsonl"
for job in 00_long 01_urgent 02_cancelme; do
    for b in serve_b1 serve_b4; do
        if cmp -s "$TMP/serve/$job/final.ckpt" "$TMP/$b/$job/final.ckpt"; then
            echo "ok: $job checkpoint bitwise identical ($b vs budget 2)"
        else
            echo "FAIL: $job checkpoint differs between budgets ($b)"
            fail=1
        fi
    done
done

# --- typed admission control ----------------------------------------------
expect 2 "missing --jobs is a usage error" "$SERVE"
echo '{ "jobs": "nope" }' >"$TMP/bad.json"
expect 2 "malformed manifest exits 2" "$SERVE" --jobs "$TMP/bad.json"
sed 's/"steps": 30/"steps": 30, "ranks": 2/' "$TMP/case.json" >"$TMP/multirank.json"
cat >"$TMP/reject.json" <<EOF
{ "jobs": [ { "case": "$TMP/multirank.json" } ] }
EOF
expect 2 "multi-rank job is rejected at admission" \
    "$SERVE" --jobs "$TMP/reject.json"
require_output "rejection names the job" "rejected at admission"

# --- mfc-run --dry-run: the validation the scheduler reuses ---------------
expect 0 "--dry-run admits the smoke case" "$RUN" "$TMP/case.json" --dry-run
require_output "dry-run reports admissibility" "admissible"
echo '{ "name": "broken" }' >"$TMP/broken.json"
expect 2 "--dry-run rejects a broken case" "$RUN" "$TMP/broken.json" --dry-run

if [ "$fail" -ne 0 ]; then
    echo "serve smoke: FAILED"
    exit 1
fi
echo "serve smoke: all checks passed"
