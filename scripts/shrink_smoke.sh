#!/usr/bin/env bash
# Smoke-test permanent-rank-loss recovery end-to-end through the CLI:
# a 4-rank checkpointed run in which physical rank 2 dies *permanently*
# (the simulated process never restarts), driven through both recovery
# policies:
#
#   --failure-policy shrink   survivors agree on a 3-rank world and the
#                             last committed wave is redistributed
#                             cross-shard (exit 0, `shrink` +
#                             `redistribute` events in the summary)
#   --failure-policy spare    a hot spare provisioned with --spares 1 is
#                             promoted into the vacant slot (exit 0,
#                             `promote_spare` event, no shrink)
#
# plus the failure modes: the default revive policy cannot resurrect a
# permanent loss (numerical exit 4), and a plan whose permanent deaths
# leave no survivor quorum is rejected as configuration (exit 2).
#
# The bitwise compare against a fresh from-checkpoint reference at the
# corresponding rank count is enforced by the shrink_spare test suite,
# which this script runs last.
#
# Run from the repo root: bash scripts/shrink_smoke.sh
# Pass `--workers N` to run the solver on N gang-parallel worker threads.
set -u

WORKERS=1
if [ "${1:-}" = "--workers" ]; then
    WORKERS=${2:?--workers needs a thread count}
fi
WFLAGS=""
[ "$WORKERS" -gt 1 ] && WFLAGS="--workers $WORKERS"

cargo build -q -p mfc-cli || exit 1
BIN=target/debug/mfc-run
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

require_output() { # require_output <description> <grep-pattern>
    if grep -q "$2" "$TMP/out.log"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - output lacks '$2'"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    fi
}

forbid_output() { # forbid_output <description> <grep-pattern>
    if grep -q "$2" "$TMP/out.log"; then
        echo "FAIL: $1 - output unexpectedly contains '$2'"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $1"
    fi
}

sod_case() { # sod_case <name>
    cat <<EOF
{
  "name": "$1",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [32, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0, 0, 0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0, 0, 0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5 },
  "run": { "steps": 12, "ranks": 4 },
  "output": { "dir": "$TMP/out_$1", "vtk": false }
}
EOF
}

# Physical rank 2 dies for good at step 7, one step after the wave-2
# commit at step 6 under --checkpoint-every 3.
cat >"$TMP/perm_plan.json" <<'EOF'
{ "seed": 11, "deaths": [ { "rank": 2, "step": 7, "permanent": true } ] }
EOF

# --- shrink-and-continue ---------------------------------------------------
sod_case shrink >"$TMP/shrink.json"
expect 0 "permanent death recovers under --failure-policy shrink" \
    "$BIN" "$TMP/shrink.json" --faults "$TMP/perm_plan.json" \
    --checkpoint-every 3 --failure-policy shrink $WFLAGS
require_output "shrink run logs the survivor consensus" "shrink"
require_output "shrink run re-shards the committed wave" "redistribute"
require_output "shrink run rolls back" "rollback"
forbid_output "shrink run promotes no spare" "promote_spare"

# --- spare-rank takeover ---------------------------------------------------
sod_case spare >"$TMP/spare.json"
expect 0 "permanent death recovers under --failure-policy spare --spares 1" \
    "$BIN" "$TMP/spare.json" --faults "$TMP/perm_plan.json" \
    --checkpoint-every 3 --failure-policy spare --spares 1 $WFLAGS
require_output "spare run logs the promotion" "promote_spare"
forbid_output "spare run keeps the decomposition (no shrink)" "shrink"

# --- default revive policy cannot absorb a permanent loss ------------------
sod_case revive >"$TMP/revive.json"
expect 4 "permanent death under the default policy is unrecoverable" \
    "$BIN" "$TMP/revive.json" --faults "$TMP/perm_plan.json" \
    --checkpoint-every 3 $WFLAGS
require_output "revive failure names the policy" "Revive"

# --- a plan with no survivor quorum is a config error ----------------------
cat >"$TMP/wipeout.json" <<'EOF'
{ "seed": 11, "deaths": [
  { "rank": 0, "step": 4, "permanent": true },
  { "rank": 1, "step": 4, "permanent": true },
  { "rank": 2, "step": 4, "permanent": true },
  { "rank": 3, "step": 4, "permanent": true }
] }
EOF
sod_case wipeout >"$TMP/wipeout_case.json"
expect 2 "plan killing every rank permanently is rejected host-side" \
    "$BIN" "$TMP/wipeout_case.json" --faults "$TMP/wipeout.json" \
    --checkpoint-every 3 --failure-policy shrink $WFLAGS
require_output "quorum error names the cause" "quorum"

# --- bad flag values -------------------------------------------------------
expect 2 "unknown failure policy is a usage error" \
    "$BIN" "$TMP/shrink.json" --failure-policy immortal

# --- bitwise equivalence vs the from-checkpoint reference ------------------
expect 0 "shrink and spare recoveries are bitwise serial-equivalent" \
    cargo test -q --test shrink_spare

if [ "$fail" -ne 0 ]; then
    echo "shrink smoke: FAILED (workers=$WORKERS)"
    exit 1
fi
echo "shrink smoke: all checks passed (workers=$WORKERS)"
