#!/usr/bin/env bash
# Vector-lane smoke: the shipped Sod case run through the CLI at lane
# widths 1, 4, and 8, with all output artifacts compared byte-for-byte —
# the OpenACC `vector` analog must be bitwise invisible at every width.
# Invalid widths must be rejected up front as a typed configuration
# error (exit 2), both from the flag and from the case file, and the
# postprocess-only path must reject a case that pins the key at all.
#
# Run from the repo root: bash scripts/vector_smoke.sh
set -u

cargo build -q -p mfc-cli || exit 1
BIN=target/debug/mfc-run
POST=target/debug/mfc-post
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

# Derive short serial variants of the shipped case, differing only in
# the output directory (and optionally pinning the width in-file).
mk_case() { # mk_case <out-json> <out-dir> [vector_width]
    python3 - "$1" "$2" "${3:-}" <<'EOF'
import json, sys
out_json, out_dir, vw = sys.argv[1], sys.argv[2], sys.argv[3]
with open("cases/sod.json") as f:
    c = json.load(f)
c["run"]["steps"] = 12
c["run"]["t_end"] = None
c["output"] = {"dir": out_dir, "vtk": True}
if vw:
    c.setdefault("numerics", {})["vector_width"] = int(vw)
with open(out_json, "w") as f:
    json.dump(c, f)
EOF
}

for w in 1 4 8; do
    mk_case "$TMP/w$w.json" "$TMP/out_w$w"
    expect 0 "sod at --vector-width $w exits 0" \
        "$BIN" "$TMP/w$w.json" --vector-width "$w"
done

# Bitwise identity: every artifact of the W=4 and W=8 runs must match
# the scalar (W=1) run byte-for-byte.
for w in 4 8; do
    if diff -r "$TMP/out_w1" "$TMP/out_w$w" >"$TMP/diff.log" 2>&1; then
        echo "ok: W=$w output is byte-identical to the scalar run"
    else
        echo "FAIL: W=$w and W=1 runs differ"
        sed 's/^/  | /' "$TMP/diff.log"
        fail=1
    fi
done

# Invalid widths are a typed configuration error, from the flag...
expect 2 "--vector-width 3 rejected as a config error" \
    "$BIN" "$TMP/w1.json" --vector-width 3
expect 2 "--vector-width 16 rejected as a config error" \
    "$BIN" "$TMP/w1.json" --vector-width 16
# ...and from the case file.
mk_case "$TMP/bad.json" "$TMP/out_bad" 5
expect 2 "numerics.vector_width=5 in the case file rejected" \
    "$BIN" "$TMP/bad.json" --validate

# The postprocess-only path rejects the key outright: no kernels run
# there, so a pinned width means the wrong file was passed.
mk_case "$TMP/post.json" "$TMP/out_w1" 4
expect 2 "mfc-post --case rejects a pinned vector_width" \
    "$POST" --case "$TMP/post.json" 0 "$TMP/post.vtk"
if grep -q "vector_width" "$TMP/out.log"; then
    echo "ok: rejection names the offending key"
else
    echo "FAIL: rejection does not name vector_width"
    sed 's/^/  | /' "$TMP/out.log"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "vector smoke: FAILED"
    exit 1
fi
echo "vector smoke: all checks passed"
