#!/usr/bin/env bash
# Overlapped-exchange smoke: the shipped Sod case run on 2 ranks through
# the CLI with the halo exchange plain and then hidden behind the
# interior RHS sweeps (`--overlap`), with all output artifacts compared
# byte-for-byte — the paper's §III-B overlap must be bitwise invisible.
# The overlapped run is also traced: the trace must stay schema-valid,
# reconcile *exactly* with the analytic kernel ledger, and carry the
# overlap phases (halo_post / interior_rhs / halo_drain / shell_rhs)
# that split hidden from exposed communication.
#
# A thin-rank layout (more ranks than the halo depth allows along an
# axis) must be rejected up front as a configuration error (exit 2) —
# the satellite halo-extent bug this PR fixed silently corrupted such
# runs instead.
#
# Run from the repo root: bash scripts/overlap_smoke.sh
set -u

cargo build -q -p mfc-cli -p mfc-trace || exit 1
BIN=target/debug/mfc-run
REPORT=target/debug/mfc-trace-report
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

# Derive short 2-rank variants of the shipped case, differing only in
# the output directory (the CLI has no --output-dir override).
mk_case() { # mk_case <out-json> <out-dir> <ranks>
    python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
out_json, out_dir, ranks = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open("cases/sod.json") as f:
    c = json.load(f)
c["run"]["steps"] = 12
c["run"]["t_end"] = None
c["run"]["ranks"] = ranks
c["output"] = {"dir": out_dir, "vtk": True}
with open(out_json, "w") as f:
    json.dump(c, f)
EOF
}

mk_case "$TMP/plain.json" "$TMP/out_plain" 2
mk_case "$TMP/overlap.json" "$TMP/out_overlap" 2

expect 0 "plain 2-rank run exits 0" \
    "$BIN" "$TMP/plain.json"
expect 0 "overlapped 2-rank run exits 0 (traced)" \
    "$BIN" "$TMP/overlap.json" --overlap --trace "$TMP/trace.json"

# Bitwise identity: every artifact the two runs produced must match.
if diff -r "$TMP/out_plain" "$TMP/out_overlap" >"$TMP/diff.log" 2>&1; then
    echo "ok: overlapped output is byte-identical to the plain exchange"
else
    echo "FAIL: overlapped and plain runs differ"
    sed 's/^/  | /' "$TMP/diff.log"
    fail=1
fi

# The overlapped trace still reconciles exactly with the kernel ledger.
expect 0 "overlapped trace validates and reconciles" \
    "$REPORT" "$TMP/trace.json" --validate --reconcile

# The overlap phases are on the timeline, splitting hidden from exposed
# communication.
for phase in halo_post interior_rhs halo_drain shell_rhs; do
    if grep -q "\"$phase\"" "$TMP/trace.json"; then
        echo "ok: trace carries the $phase span"
    else
        echo "FAIL: trace lacks the $phase span"
        fail=1
    fi
done

# Thin-rank layouts are a typed configuration error, not silent
# corruption: 100 ranks over 200 cells leaves 2-cell blocks, thinner
# than the 3-layer halo. Exit 2, naming the decomposition, before any
# rank is spawned.
mk_case "$TMP/thin.json" "$TMP/out_thin" 100
expect 2 "thin-rank decomposition is rejected as a config error" \
    "$BIN" "$TMP/thin.json" --overlap
if grep -q "decomposition" "$TMP/out.log"; then
    echo "ok: error names the decomposition"
else
    echo "FAIL: error does not mention the decomposition"
    sed 's/^/  | /' "$TMP/out.log"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "overlap smoke: FAILED"
    exit 1
fi
echo "overlap smoke: all checks passed"
