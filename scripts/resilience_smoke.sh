#!/usr/bin/env bash
# Smoke-test mfc-run's exit-code contract and the resilience machinery
# end-to-end through the CLI:
#
#   0  clean run / laddered recovery
#   2  invalid configuration or usage
#   3  I/O failure
#   4  numerical failure after ladder exhaustion
#
# plus a checkpointed multi-rank run with an injected rank death
# (rollback + replay), the checkpoint magic bytes, and the
# corrupt-checkpoint-wave rollback test.
#
# Run from the repo root: bash scripts/resilience_smoke.sh
# Pass `--workers N` to run every solver invocation on N gang-parallel
# worker threads (results are bitwise identical, so every check below
# holds unchanged at any worker count).
set -u

WORKERS=1
if [ "${1:-}" = "--workers" ]; then
    WORKERS=${2:?--workers needs a thread count}
fi
WFLAGS=""
[ "$WORKERS" -gt 1 ] && WFLAGS="--workers $WORKERS"

cargo build -q -p mfc-cli || exit 1
BIN=target/debug/mfc-run
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

require_output() { # require_output <description> <grep-pattern>
    if grep -q "$2" "$TMP/out.log"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - output lacks '$2'"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    fi
}

sod_case() { # sod_case <name> <extra-run-json> <extra-numerics-json>
    cat <<EOF
{
  "name": "$1",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [32, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0, 0, 0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0, 0, 0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5$3 },
  "run": { "steps": 12$2 },
  "output": { "dir": "$TMP/out_$1", "vtk": false }
}
EOF
}

# --- exit 0: a clean serial run -------------------------------------------
sod_case clean "" "" >"$TMP/clean.json"
expect 0 "clean run exits 0" "$BIN" "$TMP/clean.json" $WFLAGS

# --- exit 2: usage / configuration errors ---------------------------------
expect 2 "missing case file is a usage error" "$BIN"
expect 2 "unknown flag is a usage error" "$BIN" "$TMP/clean.json" --no-such-flag
echo '{ "name": "broken" }' >"$TMP/broken.json"
expect 2 "invalid case schema exits 2" "$BIN" "$TMP/broken.json"
require_output "config error names the cause" "invalid configuration"

# --- exit 3: I/O failure ---------------------------------------------------
expect 3 "unreadable case file exits 3" "$BIN" "$TMP/does_not_exist.json"
require_output "i/o error names the cause" "i/o failure"

# --- exit 4: numerical failure without a ladder ---------------------------
# dt = 0.2 is ~8x the stable CFL step for 32-cell Sod: the run must blow
# up, the health watchdog must catch it, and without a recovery ladder
# that is a numerical abort.
sod_case hot "" ', "dt": 0.2' >"$TMP/hot.json"
expect 4 "overdriven dt without recovery exits 4" "$BIN" "$TMP/hot.json" $WFLAGS
require_output "numerical error names the cause" "numerical failure"

# --- exit 0: the same fault recovered through the ladder ------------------
cat >"$TMP/ladder.json" <<'EOF'
{
  "ladder": ["halve_dt", "halve_dt", "halve_dt", "halve_dt",
             "halve_dt", "halve_dt", "zhang_shu", "weno3", "rusanov"],
  "max_retries": 64,
  "restore_after": 1000
}
EOF
expect 0 "overdriven dt completes with --recovery" \
    "$BIN" "$TMP/hot.json" --recovery "$TMP/ladder.json" $WFLAGS
require_output "ladder run logs health faults" "health_fault"
require_output "ladder run logs retries" "retry"

# --- checkpointed multi-rank run with an injected rank death --------------
sod_case death ', "ranks": 2' "" >"$TMP/death.json"
cat >"$TMP/plan.json" <<'EOF'
{ "seed": 7, "deaths": [ { "rank": 1, "step": 10 } ] }
EOF
expect 0 "rank death recovers via checkpoint rollback" \
    "$BIN" "$TMP/death.json" --faults "$TMP/plan.json" --checkpoint-every 3 $WFLAGS
require_output "death run logs a rollback" "rollback"

ckpt=$(find "$TMP/out_death/ckpt" -name 'ckpt_r*_w*.bin' | sort | head -1)
if [ -n "$ckpt" ] && [ "$(head -c 8 "$ckpt")" = "MFCKPT01" ]; then
    echo "ok: committed checkpoint carries the MFCKPT01 magic"
else
    echo "FAIL: no committed checkpoint with MFCKPT01 magic under out_death/ckpt"
    fail=1
fi

# --- permanent rank death: fatal by default, survivable under shrink ------
# The revive policy only covers transient deaths (the simulated process
# restarts); a permanent loss must abort numerically, and the same plan
# must complete once survivors are allowed to shrink the decomposition.
# scripts/shrink_smoke.sh covers the full policy matrix.
sod_case perm ', "ranks": 4' "" >"$TMP/perm.json"
cat >"$TMP/perm_plan.json" <<'EOF'
{ "seed": 7, "deaths": [ { "rank": 2, "step": 7, "permanent": true } ] }
EOF
expect 4 "permanent rank death under the default policy exits 4" \
    "$BIN" "$TMP/perm.json" --faults "$TMP/perm_plan.json" \
    --checkpoint-every 3 $WFLAGS
require_output "permanent-death abort names the policy" "Revive"
expect 0 "the same permanent death completes with --failure-policy shrink" \
    "$BIN" "$TMP/perm.json" --faults "$TMP/perm_plan.json" \
    --checkpoint-every 3 --failure-policy shrink $WFLAGS
require_output "shrink recovery logs the survivor consensus" "shrink"

# --- corrupt-checkpoint rollback (truncated wave skipped collectively) ----
expect 0 "corrupt checkpoint wave is skipped during rollback" \
    cargo test -q --test health_recovery \
    corrupt_checkpoint_wave_is_skipped_during_rollback

if [ "$fail" -ne 0 ]; then
    echo "resilience smoke: FAILED (workers=$WORKERS)"
    exit 1
fi
echo "resilience smoke: all checks passed (workers=$WORKERS)"
