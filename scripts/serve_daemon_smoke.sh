#!/usr/bin/env bash
# Smoke-test the mfc-serve daemon end-to-end through the CLI:
#
#   - `--listen 127.0.0.1:0` binds an ephemeral port and announces it as
#     `listening on HOST:PORT` on stdout;
#   - jobs streamed over TCP (bash /dev/tcp, one JSON frame per line)
#     are admitted into the running ensemble, `metrics` reflects them,
#     and `drain` closes admission and exits 0 with a complete ledger;
#   - the streamed job's checkpoint is byte-identical to the same job
#     run in manifest mode — the transport is numerically invisible;
#   - malformed frames get typed `malformed_frame` error responses on a
#     connection that survives them;
#   - startup validation is typed: an unwritable --out-dir or --ledger
#     exits 3 before the daemon accepts anything.
#
# Run from the repo root: bash scripts/serve_daemon_smoke.sh
set -u

cargo build -q -p mfc-sched -p mfc-cli || exit 1
SERVE=target/debug/mfc-serve
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null' EXIT

fail=0
expect() { # expect <exit-code> <description> <cmd...>
    local want=$1 desc=$2
    shift 2
    "$@" >"$TMP/out.log" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc - expected exit $want, got $got"
        sed 's/^/  | /' "$TMP/out.log"
        fail=1
    else
        echo "ok: $desc (exit $got)"
    fi
}

require_output() { # require_output <description> <grep-pattern> [file]
    local file=${3:-$TMP/out.log}
    if grep -q "$2" "$file"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 - output lacks '$2'"
        sed 's/^/  | /' "$file"
        fail=1
    fi
}

cat >"$TMP/case.json" <<EOF
{
  "name": "smoke",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [64, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0, 0, 0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0, 0, 0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5 },
  "run": { "steps": 30 },
  "output": { "dir": "$TMP/out_case", "vtk": false }
}
EOF

# --- reference: the same job in manifest mode ------------------------------
cat >"$TMP/jobs.json" <<EOF
{ "out_dir": "$TMP/manifest",
  "jobs": [ { "case": "$TMP/case.json", "name": "wire", "max_steps": 12 } ] }
EOF
expect 0 "manifest-mode reference run exits 0" \
    "$SERVE" --jobs "$TMP/jobs.json" --ledger "$TMP/manifest_ledger.jsonl"

# --- the daemon: stream the same job over TCP ------------------------------
"$SERVE" --listen 127.0.0.1:0 --out-dir "$TMP/daemon" \
    --ledger "$TMP/daemon_ledger.jsonl" >"$TMP/daemon.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/daemon.log" | head -n1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "FAIL: daemon died before announcing its address"
        sed 's/^/  | /' "$TMP/daemon.log"
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: daemon never announced 'listening on HOST:PORT'"
    sed 's/^/  | /' "$TMP/daemon.log"
    exit 1
fi
echo "ok: daemon announced $ADDR"
HOST=${ADDR%:*}
PORT=${ADDR##*:}

# One TCP session: ping, a malformed frame, submit, metrics, drain.
# Responses come back one line per request, in order.
exec 3<>"/dev/tcp/$HOST/$PORT"
{
    printf '%s\n' '{"cmd":"ping"}'
    printf '%s\n' 'this is not json'
    printf '{"cmd":"submit","job":{"case":"%s","name":"wire","max_steps":12}}\n' "$TMP/case.json"
    printf '%s\n' '{"cmd":"metrics"}'
    printf '%s\n' '{"cmd":"drain"}'
} >&3
head -n 5 <&3 >"$TMP/session.log"
exec 3<&- 3>&-

require_output "ping answered ok" '"pong":true' "$TMP/session.log"
require_output "malformed frame gets a typed error" '"kind":"malformed_frame"' "$TMP/session.log"
require_output "submission accepted with an id" '"id":0' "$TMP/session.log"
require_output "metrics report the submission" '"submitted":1' "$TMP/session.log"
require_output "drain acknowledged" '"draining":true' "$TMP/session.log"

wait "$SERVE_PID"
code=$?
SERVE_PID=""
if [ "$code" -eq 0 ]; then
    echo "ok: daemon exited 0 after drain"
else
    echo "FAIL: daemon exit code $code after drain"
    sed 's/^/  | /' "$TMP/daemon.log"
    fail=1
fi
require_output "daemon ledger records the job done" \
    '"job":"wire".*"state":"done","steps":12' "$TMP/daemon_ledger.jsonl"

# --- the transport is numerically invisible --------------------------------
if cmp -s "$TMP/manifest/00_wire/final.ckpt" "$TMP/daemon/00_wire/final.ckpt"; then
    echo "ok: streamed checkpoint bitwise identical to manifest mode"
else
    echo "FAIL: streamed checkpoint differs from manifest mode"
    fail=1
fi

# --- typed startup validation ----------------------------------------------
printf 'not a directory' >"$TMP/blocker"
expect 3 "unwritable --out-dir exits 3 at startup" \
    "$SERVE" --listen 127.0.0.1:0 --out-dir "$TMP/blocker/out"
expect 3 "unwritable --ledger exits 3 at startup" \
    "$SERVE" --listen 127.0.0.1:0 --out-dir "$TMP/ok_out" \
    --ledger "$TMP/blocker/deep/ledger.jsonl"
expect 2 "neither --jobs nor --listen is a usage error" "$SERVE"

if [ "$fail" -ne 0 ]; then
    echo "serve daemon smoke: FAILED"
    exit 1
fi
echo "serve daemon smoke: all checks passed"
